// Package rest implements the RESTful control and query API that DCDB
// exposes on every component (paper §IV-A, §V-A): plugin and operator
// introspection, operator life-cycle control, on-demand computation
// triggers, sensor discovery and cache/store queries.
package rest

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/resultcache"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// API wraps a Wintermute manager and query engine with HTTP handlers.
type API struct {
	m    *core.Manager
	qe   *core.QueryEngine
	rc   *resultcache.Cache
	reg  *telemetry.Registry
	mx   *restMetrics
	slow *telemetry.SlowQueryLog
}

// Options tunes the serving tier of one API instance. The zero value —
// and calling NewHandler/Serve without options — serves every request
// uncached and unthrottled, exactly as before.
type Options struct {
	// ResultCache memoizes absolute-window /query responses (aggregates,
	// downsamples, raw ranges) with write-through invalidation; nil
	// disables memoization.
	ResultCache *resultcache.Cache
	// RateLimit is the sustained per-client request budget in requests
	// per second; over-budget requests receive 429 with a Retry-After
	// hint. 0 disables limiting.
	RateLimit float64
	// RateBurst is the token-bucket depth per client (how many requests
	// may arrive back-to-back before the sustained rate applies).
	// 0 derives 2×RateLimit, minimum 1.
	RateBurst int
	// Metrics instruments the serving tier into the given registry
	// (per-route request counters and latency histograms, in-flight
	// gauge, response classes, 429s) and exposes GET /metrics with the
	// registry's Prometheus rendition. It also re-sources GET /status
	// and GET /storage from the registry, so those endpoints cannot
	// disagree with /metrics. nil leaves the API un-instrumented and
	// /metrics unrouted.
	Metrics *telemetry.Registry
	// SlowQuery enables the structured slow-query log: requests running
	// at or over this threshold emit one JSON line (trace ID, route,
	// status, duration, and the query annotations — op, sensor, cache
	// verdict, wildcard fan-out, chunks decoded). 0 disables it.
	SlowQuery time.Duration
	// SlowQueryOut receives the slow-query log lines; nil with SlowQuery
	// set defaults to os.Stderr.
	SlowQueryOut io.Writer
}

// NewHandler builds the HTTP handler tree for one DCDB component. At
// most one Options value applies; omitting it keeps the pre-hardening
// behavior.
func NewHandler(m *core.Manager, qe *core.QueryEngine, opts ...Options) http.Handler {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.SlowQuery > 0 && o.SlowQueryOut == nil {
		o.SlowQueryOut = os.Stderr
	}
	api := &API{
		m: m, qe: qe, rc: o.ResultCache,
		reg:  o.Metrics,
		mx:   newRESTMetrics(o.Metrics),
		slow: telemetry.NewSlowQueryLog(o.SlowQueryOut, o.SlowQuery),
	}
	if o.Metrics != nil && api.slow != nil {
		// The handle is never closed: the registry and the handler share
		// the process lifetime.
		slow := api.slow
		o.Metrics.CounterFunc("dcdb_http_slow_queries_total",
			"Requests logged by the slow-query log.",
			func() float64 { return float64(slow.Logged()) })
	}
	mux := http.NewServeMux()
	// Instrumentation wraps each route only when something observes it
	// (a registry or a slow-query log); the zero-Options handler tree is
	// byte-identical to the un-instrumented one.
	handle := func(pattern, route string, h http.HandlerFunc) {
		if o.Metrics != nil || api.slow != nil {
			h = api.instrumented(route, h)
		}
		mux.HandleFunc(pattern, h)
	}
	handle("GET /plugins", "/plugins", api.plugins)
	handle("GET /status", "/status", api.status)
	handle("GET /storage", "/storage", api.storage)
	handle("GET /operators", "/operators", api.operators)
	handle("GET /units", "/units", api.units)
	handle("GET /sensors", "/sensors", api.sensors)
	handle("GET /average", "/average", api.average)
	handle("GET /query", "/query", api.query)
	handle("POST /operators/start", "/operators/start", api.start)
	handle("POST /operators/stop", "/operators/stop", api.stop)
	handle("POST /compute", "/compute", api.compute)
	handle("POST /plugins/load", "/plugins/load", api.load)
	handle("POST /plugins/unload", "/plugins/unload", api.unload)
	if o.Metrics != nil {
		// /metrics itself stays un-instrumented: a scrape should not
		// perturb the request series it reads.
		mux.HandleFunc("GET /metrics", api.metrics)
	}
	var h http.Handler = mux
	if o.RateLimit > 0 {
		h = withRateLimit(newLimiter(o.RateLimit, o.RateBurst), h, api.mx.throttled)
	}
	return h
}

// Server is a running REST endpoint.
type Server struct {
	http net.Listener
	srv  *http.Server
}

// Serve starts the API on addr (e.g. "127.0.0.1:0").
func Serve(addr string, m *core.Manager, qe *core.QueryEngine, opts ...Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewHandler(m, qe, opts...)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{http: ln, srv: srv}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.http.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (a *API) plugins(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"plugins": core.RegisteredPlugins()})
}

func (a *API) operators(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.Status())
}

// status reports the component's Wintermute health in one response: the
// tick scheduler's pool state plus every operator's snapshot, including
// per-operator last tick durations.
func (a *API) status(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"scheduler": a.schedulerStats(),
		"operators": a.m.Status(),
	})
}

// schedulerStats sources the pool numbers for /status. With a registry
// attached (and the manager's telemetry enabled on it) the values come
// from the same dcdb_scheduler_* series /metrics exposes, so the two
// endpoints cannot disagree; otherwise it asks the manager directly.
func (a *API) schedulerStats() core.SchedulerStats {
	if threads, ok := a.reg.Value("dcdb_scheduler_threads"); ok {
		queued, _ := a.reg.Value("dcdb_scheduler_queued")
		active, _ := a.reg.Value("dcdb_scheduler_active")
		completed, _ := a.reg.Value("dcdb_scheduler_tasks_completed_total")
		return core.SchedulerStats{
			Threads:   int(threads),
			Queued:    int(queued),
			Active:    int(active),
			Completed: uint64(completed),
		}
	}
	return a.m.SchedulerStats()
}

// storage reports the component's Storage Backend: its kind, series and
// reading counts and — for the persistent tsdb engine — the on-disk
// footprint and WAL/segment state. Cache-only components (Pushers)
// answer with kind "none".
func (a *API) storage(w http.ResponseWriter, r *http.Request) {
	backend := a.qe.Store()
	if backend == nil {
		writeJSON(w, http.StatusOK, store.BackendStats{Kind: "none"})
		return
	}
	if sp, ok := backend.(store.StatsProvider); ok {
		// With a registry attached, refresh it (one snapshot runs the
		// storage updater) and serve the exact BackendStats that snapshot
		// captured — the numbers a concurrent /metrics scrape would show.
		if a.reg != nil {
			a.reg.Snapshot(func(*telemetry.Sample) {})
			if st, ok := store.LastBackendStats(a.reg); ok {
				writeJSON(w, http.StatusOK, st)
				return
			}
		}
		writeJSON(w, http.StatusOK, sp.Stats())
		return
	}
	// A backend without native statistics still has the Backend surface:
	// derive the counts.
	st := store.BackendStats{Kind: "unknown"}
	for _, topic := range backend.Topics() {
		st.Topics++
		st.TotalReadings += backend.Count(topic)
	}
	writeJSON(w, http.StatusOK, st)
}

func (a *API) units(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("operator")
	op, ok := a.m.Operator(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown operator %q", name))
		return
	}
	type unitJSON struct {
		Name    sensor.Topic   `json:"name"`
		Inputs  []sensor.Topic `json:"inputs"`
		Outputs []sensor.Topic `json:"outputs"`
	}
	var out []unitJSON
	for _, u := range op.Units() {
		out = append(out, unitJSON{Name: u.Name, Inputs: u.Inputs, Outputs: u.Outputs})
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) sensors(w http.ResponseWriter, r *http.Request) {
	nav := a.qe.Navigator()
	prefix := r.URL.Query().Get("prefix")
	var topics []sensor.Topic
	if prefix == "" {
		topics = nav.AllSensors()
	} else {
		topics = nav.SensorsBelow(sensor.Topic(prefix))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sensors": topics, "count": len(topics)})
}

func (a *API) average(w http.ResponseWriter, r *http.Request) {
	topic := sensor.Topic(r.URL.Query().Get("sensor"))
	window, err := parseWindow(r.URL.Query().Get("window"), 60*time.Second)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	avg, ok := a.qe.Average(topic, window)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no data for %q", topic))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sensor": topic, "window": window.String(), "average": avg})
}

// query serves GET /query. Without op it returns raw readings of one
// sensor (relative, absolute or latest mode). With op (avg, min, max,
// sum, count) it evaluates the aggregate over the requested window
// through the Query Engine's streaming aggregation path — adding
// step=<duration> buckets the window into a downsampled series — and
// the sensor parameter may end in the '#' multi-level wildcard
// (e.g. /rack0/#) to fan the aggregation out over every sensor below
// that prefix.
func (a *API) query(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("op") != "" {
		a.queryAggregate(w, r)
		return
	}
	topic := sensor.Topic(q.Get("sensor"))
	tr := telemetry.TraceFrom(r.Context())
	var readings []sensor.Reading
	switch {
	case q.Get("lookback") != "":
		tr.SetQuery("relative", string(topic))
		lookback, err := parseWindow(q.Get("lookback"), 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		readings = a.qe.QueryRelative(topic, lookback, nil)
	case q.Get("from") != "" || q.Get("to") != "":
		tr.SetQuery("range", string(topic))
		from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
		to, err2 := strconv.ParseInt(q.Get("to"), 10, 64)
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("from/to must be nanosecond timestamps"))
			return
		}
		// Absolute ranges are what dashboards re-request: memoize them.
		if a.rc != nil {
			topics := []sensor.Topic{topic}
			key := resultcache.Key{
				Digest: resultcache.DigestTopics(topics),
				Kind:   resultcache.KindRange,
				Start:  from, End: to,
			}
			if v, ok := a.rc.Get(key, topics); ok {
				tr.SetCacheVerdict("hit")
				writeReadings(w, topic, v.([]sensor.Reading))
				return
			}
			tr.SetCacheVerdict("miss")
			stamp := a.rc.Begin(topics)
			readings = a.qe.QueryAbsolute(topic, from, to, nil)
			if len(readings) <= maxCachedRange {
				a.rc.Put(key, stamp, readings)
			}
			writeReadings(w, topic, readings)
			return
		}
		readings = a.qe.QueryAbsolute(topic, from, to, nil)
	default:
		tr.SetQuery("latest", string(topic))
		if latest, ok := a.qe.Latest(topic); ok {
			readings = []sensor.Reading{latest}
		}
	}
	writeReadings(w, topic, readings)
}

// maxCachedRange bounds the raw-readings payloads admitted to the
// result cache; larger windows stream straight from the engine instead
// of pinning megabytes per LRU slot.
const maxCachedRange = 65536

// writeReadings streams a raw-readings response element by element, so
// a large Range answer leaves in chunks instead of one giant buffer.
func writeReadings(w http.ResponseWriter, topic sensor.Topic, readings []sensor.Reading) {
	s := startStream(w, http.StatusOK)
	s.raw(`{"sensor":`)
	s.value(topic)
	s.raw(`,"count":`)
	s.int64(int64(len(readings)))
	s.raw(`,"readings":[`)
	for i := range readings {
		s.element(i, readings[i])
	}
	s.raw(`]}`)
	s.done()
}

// maxQueryBuckets bounds a downsampling response across the whole
// request: window/step buckets times the number of fanned-out sensors,
// keeping one request (a '#' wildcard over a dense history, say) from
// asking the engine — and the JSON encoder — for millions of buckets.
const maxQueryBuckets = 100_000

// aggSensorJSON is one sensor's slot in an aggregation response. Value
// is absent when the sensor had no readings in the window; Buckets is
// only present on step (downsampling) queries.
type aggSensorJSON struct {
	Sensor  sensor.Topic    `json:"sensor"`
	Count   int64           `json:"count"`
	Value   *float64        `json:"value,omitempty"`
	Buckets []aggBucketJSON `json:"buckets,omitempty"`
}

// aggBucketJSON is one downsampling bucket: its start timestamp, the
// reading count and the operator evaluated over the bucket.
type aggBucketJSON struct {
	Start int64   `json:"start"`
	Count int64   `json:"count"`
	Value float64 `json:"value"`
}

// aggEntry is one sensor's slot in a memoized aggregation result. It
// carries the full moment set (store.AggResult holds count/sum/min/max
// at once), NOT the rendered value — so one cached window answers
// avg, min, max, sum and count queries alike; the op applies at render
// time. Buckets is non-nil exactly on downsampling results.
type aggEntry struct {
	topic   sensor.Topic
	res     store.AggResult
	buckets []store.Bucket
}

// aggPayload is the op-independent memoized form of one absolute
// aggregation response.
type aggPayload struct {
	entries  []aggEntry
	combined store.AggResult
}

// renderEntry projects one cached/computed entry through op into its
// response shape.
func renderEntry(e aggEntry, op store.AggOp) aggSensorJSON {
	js := aggSensorJSON{Sensor: e.topic, Count: e.res.Count}
	if e.buckets != nil {
		out := make([]aggBucketJSON, 0, len(e.buckets))
		for _, b := range e.buckets {
			v, _ := b.Value(op)
			out = append(out, aggBucketJSON{Start: b.Start, Count: b.Count, Value: v})
		}
		js.Buckets = out
		return js
	}
	if v, ok := e.res.Value(op); ok {
		js.Value = &v
	}
	return js
}

// renderCombined projects the cross-sensor merge through op.
func renderCombined(res store.AggResult, op store.AggOp) aggSensorJSON {
	js := aggSensorJSON{Sensor: "", Count: res.Count}
	if v, ok := res.Value(op); ok {
		js.Value = &v
	}
	return js
}

// queryAggregate answers GET /query with op set. Responses stream: the
// per-sensor array is emitted element by element (with periodic chunk
// flushes), so wildcard fan-outs over thousands of sensors never
// materialize one giant response value. Absolute windows whose start is
// step-aligned — the shape dashboards poll — are memoized in the result
// cache under an op-independent key.
func (a *API) queryAggregate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	op, err := store.ParseAggOp(q.Get("op"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	topics, err := a.expandTopics(q.Get("sensor"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	tr := telemetry.TraceFrom(r.Context())
	tr.SetQuery(op.String(), q.Get("sensor"))
	tr.SetFanout(len(topics))

	// Relative window: one lookback aggregate per sensor, each anchored
	// at that sensor's latest reading — inherently uncacheable (the
	// window moves with every insert). Bucketing needs an absolute
	// window to align to.
	if lb := q.Get("lookback"); lb != "" {
		if q.Get("step") != "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("step requires an absolute start/end window"))
			return
		}
		lookback, err := parseWindow(lb, 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s := startStream(w, http.StatusOK)
		s.raw(`{"op":`)
		s.value(op.String())
		s.raw(`,"lookback":`)
		s.value(lookback.String())
		s.raw(`,"sensors":[`)
		var combined store.AggResult
		for i, tp := range topics {
			res := a.qe.AggregateRelative(tp, lookback)
			combined.Merge(res)
			s.element(i, renderEntry(aggEntry{topic: tp, res: res}, op))
		}
		s.raw(`],"combined":`)
		s.value(renderCombined(combined, op))
		s.raw(`}`)
		s.done()
		return
	}

	start, err1 := strconv.ParseInt(firstOf(q, "start", "from"), 10, 64)
	end, err2 := strconv.ParseInt(firstOf(q, "end", "to"), 10, 64)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("aggregation needs start/end nanosecond timestamps or a lookback duration"))
		return
	}

	var step int64
	var stepStr string
	if s := q.Get("step"); s != "" {
		d, err := parseWindow(s, 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		step = int64(d)
		if step <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("step must be positive"))
			return
		}
		if end >= start && ((end-start)/step+1) > maxQueryBuckets/int64(len(topics)) {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("window/step yields more than %d buckets across %d sensors",
					maxQueryBuckets, len(topics)))
			return
		}
		stepStr = d.String()
	}

	// Memoize step-aligned absolute windows only: dashboards poll those
	// repeatedly, while arbitrary offsets would just churn the LRU. The
	// op is deliberately not part of the key (see aggEntry).
	kind := resultcache.KindAggregate
	if step > 0 {
		kind = resultcache.KindDownsample
	}
	var key resultcache.Key
	var stamp resultcache.Stamp
	var payload *aggPayload
	if a.rc != nil && (step == 0 || start%step == 0) {
		key = resultcache.Key{
			Digest: resultcache.DigestTopics(topics),
			Kind:   kind,
			Start:  start, End: end, Step: step,
		}
		if v, ok := a.rc.Get(key, topics); ok {
			tr.SetCacheVerdict("hit")
			a.streamAggAbsolute(w, op, start, end, stepStr, v.(*aggPayload))
			return
		}
		tr.SetCacheVerdict("miss")
		// The stamp must predate the compute: readings landing during it
		// then invalidate the entry instead of being missed.
		stamp = a.rc.Begin(topics)
		payload = &aggPayload{entries: make([]aggEntry, 0, len(topics))}
	}

	s := startStream(w, http.StatusOK)
	s.raw(`{"op":`)
	s.value(op.String())
	s.raw(`,"start":`)
	s.int64(start)
	s.raw(`,"end":`)
	s.int64(end)
	if stepStr != "" {
		s.raw(`,"step":`)
		s.value(stepStr)
	}
	s.raw(`,"sensors":[`)
	var combined store.AggResult
	var buckets []store.Bucket
	for i, tp := range topics {
		e := aggEntry{topic: tp}
		if step > 0 {
			buckets = a.qe.Downsample(tp, start, end, step, buckets[:0])
			for _, b := range buckets {
				e.res.Merge(b.AggResult)
			}
			if payload != nil {
				// Copy: buckets is reused for the next sensor.
				e.buckets = append(make([]store.Bucket, 0, len(buckets)), buckets...)
			} else {
				e.buckets = buckets
			}
			if e.buckets == nil {
				e.buckets = []store.Bucket{}
			}
		} else {
			e.res = a.qe.AggregateAbsolute(tp, start, end)
		}
		combined.Merge(e.res)
		s.element(i, renderEntry(e, op))
		if payload != nil {
			payload.entries = append(payload.entries, e)
		}
	}
	s.raw(`],"combined":`)
	s.value(renderCombined(combined, op))
	s.raw(`}`)
	s.done()
	if payload != nil {
		payload.combined = combined
		a.rc.Put(key, stamp, payload)
	}
}

// streamAggAbsolute renders a cached absolute aggregation payload,
// byte-identical to the uncached stream for the same op and window.
func (a *API) streamAggAbsolute(w http.ResponseWriter, op store.AggOp, start, end int64, stepStr string, p *aggPayload) {
	s := startStream(w, http.StatusOK)
	s.raw(`{"op":`)
	s.value(op.String())
	s.raw(`,"start":`)
	s.int64(start)
	s.raw(`,"end":`)
	s.int64(end)
	if stepStr != "" {
		s.raw(`,"step":`)
		s.value(stepStr)
	}
	s.raw(`,"sensors":[`)
	for i, e := range p.entries {
		s.element(i, renderEntry(e, op))
	}
	s.raw(`],"combined":`)
	s.value(renderCombined(p.combined, op))
	s.raw(`}`)
	s.done()
}

// expandTopics resolves the sensor parameter of an aggregation query:
// a plain topic names itself (no namespace walk, no allocation beyond
// the one-element slice); a topic ending in the '#' multi-level
// wildcard (MQTT-style, as in the push transport) expands through the
// backend's sorted prefix index in O(matches) — or the navigator tree
// on cache-only hosts — instead of filtering the full topic list.
func (a *API) expandTopics(spec string) ([]sensor.Topic, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing sensor parameter")
	}
	if !strings.HasSuffix(spec, "#") {
		return []sensor.Topic{sensor.Topic(spec)}, nil
	}
	prefix := strings.TrimSuffix(strings.TrimSuffix(spec, "#"), "/")
	topics := a.qe.TopicsPrefix(sensor.Topic(prefix))
	if len(topics) == 0 {
		return nil, fmt.Errorf("no sensors match %q", spec)
	}
	return topics, nil
}

// firstOf returns the first non-empty value among the named query
// parameters (start/end accept from/to as aliases).
func firstOf(q url.Values, names ...string) string {
	for _, n := range names {
		if v := q.Get(n); v != "" {
			return v
		}
	}
	return ""
}

func (a *API) start(w http.ResponseWriter, r *http.Request) {
	if err := a.m.StartOperator(r.URL.Query().Get("operator")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "started"})
}

func (a *API) stop(w http.ResponseWriter, r *http.Request) {
	if err := a.m.StopOperator(r.URL.Query().Get("operator")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stopped"})
}

func (a *API) compute(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	outs, err := a.m.OnDemand(q.Get("operator"), sensor.Topic(q.Get("unit")), time.Now())
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type outJSON struct {
		Topic sensor.Topic `json:"topic"`
		Value float64      `json:"value"`
		Time  int64        `json:"time"`
	}
	res := make([]outJSON, 0, len(outs))
	for _, o := range outs {
		res = append(res, outJSON{Topic: o.Topic, Value: o.Reading.Value, Time: o.Reading.Time})
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *API) load(w http.ResponseWriter, r *http.Request) {
	plugin := r.URL.Query().Get("plugin")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := a.m.LoadPlugin(plugin, body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "loaded"})
}

func (a *API) unload(w http.ResponseWriter, r *http.Request) {
	n := a.m.UnloadPlugin(r.URL.Query().Get("plugin"))
	writeJSON(w, http.StatusOK, map[string]any{"status": "unloaded", "operators": n})
}

func parseWindow(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		if def > 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing duration parameter")
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}
