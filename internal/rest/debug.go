package rest

import (
	"net"
	"net/http"
	"net/http/pprof"

	"github.com/dcdb/wintermute/internal/telemetry"
)

// DebugServer is a running diagnostics endpoint.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the diagnostics endpoint on addr: the net/http/pprof
// handler tree under /debug/pprof/ plus /metrics for reg. It builds its
// own mux on its own listener — the daemons bind it to a loopback or
// management address via -debug-addr, never the public API port, so
// profiling and introspection stay off the serving surface.
func ServeDebug(addr string, reg *telemetry.Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentType)
		_ = reg.WritePrometheus(w)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the diagnostics endpoint down.
func (s *DebugServer) Close() error { return s.srv.Close() }
