// Package testseed gives randomized tests a logged, replayable seed.
//
// Property suites and chaos scenarios draw their randomness from
// testseed.Seed (or a *rand.Rand from testseed.Rand) instead of fixed
// constants or the implicit global source: each run explores a fresh
// seed derived from the wall clock, the seed is logged through the
// test's t.Logf so a failure report always carries it, and setting
// WINTERMUTE_TEST_SEED replays the exact same sequence under `-run`:
//
//	WINTERMUTE_TEST_SEED=1723108711 go test -run 'TestAggEquivalence' ./internal/tsdb
//
// Derived seeds (Derive) fan one logged seed out to subtests and
// goroutines deterministically, so a replayed run reproduces every
// worker's sequence, not just the first.
package testseed

import (
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// EnvVar is the environment variable that pins the seed for replay.
const EnvVar = "WINTERMUTE_TEST_SEED"

// Seed returns the run's base seed: WINTERMUTE_TEST_SEED when set (the
// replay path), a wall-clock-derived value otherwise. Either way the
// seed and the replay incantation are logged against the calling test.
func Seed(t testing.TB) int64 {
	t.Helper()
	seed, pinned := seedFromEnv()
	if !pinned {
		seed = time.Now().UnixNano()
	}
	t.Logf("testseed: seed=%d (replay: %s=%d go test -run '^%s$')", seed, EnvVar, seed, t.Name())
	return seed
}

// Rand returns a private *rand.Rand seeded via Seed. Not safe for
// concurrent use — derive one per goroutine with Derive instead.
func Rand(t testing.TB) *rand.Rand {
	t.Helper()
	return rand.New(rand.NewSource(Seed(t)))
}

// Derive maps a base seed and a label (subtest name, worker index) to a
// stable child seed, so one logged seed reproduces every derived
// sequence.
func Derive(seed int64, label string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return int64(h.Sum64())
}

func seedFromEnv() (int64, bool) {
	v := os.Getenv(EnvVar)
	if v == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
