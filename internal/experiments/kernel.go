// Package experiments implements the reproduction harness for every
// figure of the paper's evaluation (§VI): the Query Engine overhead
// heatmaps (Figure 5), the power-prediction case study (Figure 6), the
// per-job CPI decile pipeline (Figure 7), the fleet-clustering case study
// (Figure 8) and the in-text resource-footprint measurements.
//
// Each experiment is a pure function from a config to a result struct;
// cmd/benchrunner renders results as tables/CSV, and the package tests
// assert the qualitative shapes the paper reports on scaled-down configs.
package experiments

import (
	"runtime"
	"sync"
	"time"
)

// KernelConfig sizes the CPU-saturating compute kernel that stands in for
// the High-Performance Linpack benchmark in the overhead experiments: a
// blocked dense matrix multiplication striped across all cores, the same
// interference profile (pure CPU + memory bandwidth) as HPL.
type KernelConfig struct {
	// N is the matrix dimension.
	N int
	// Iters is the number of multiplication passes.
	Iters int
	// Workers bounds parallelism (default: GOMAXPROCS, like HPL "with as
	// many threads as physical cores").
	Workers int
}

// DefaultKernel returns a kernel sized to run for roughly a second on a
// current machine.
func DefaultKernel() KernelConfig {
	return KernelConfig{N: 384, Iters: 12}
}

// RunKernel executes the kernel once and returns its wall-clock duration.
// The checksum defeats dead-code elimination.
func RunKernel(cfg KernelConfig) (time.Duration, float64) {
	n := cfg.N
	if n <= 0 {
		n = 384
	}
	iters := cfg.Iters
	if iters <= 0 {
		iters = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%97) * 0.01
		b[i] = float64(i%89) * 0.02
	}
	start := time.Now()
	for it := 0; it < iters; it++ {
		matmulStriped(c, a, b, n, workers)
		// Feed the output back so iterations cannot be collapsed.
		a, c = c, a
	}
	elapsed := time.Since(start)
	var sum float64
	for i := 0; i < n; i++ {
		sum += a[i*n+i]
	}
	return elapsed, sum
}

// matmulStriped computes c = a*b with rows striped across workers.
func matmulStriped(c, a, b []float64, n, workers int) {
	var wg sync.WaitGroup
	rows := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rows
		hi := lo + rows
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				ai := a[i*n : (i+1)*n]
				ci := c[i*n : (i+1)*n]
				for j := range ci {
					ci[j] = 0
				}
				for k, av := range ai {
					if av == 0 {
						continue
					}
					bk := b[k*n : (k+1)*n]
					for j, bv := range bk {
						ci[j] += av * bv
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}
