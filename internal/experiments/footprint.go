package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/plugins/tester"
	"github.com/dcdb/wintermute/internal/pusher"
	"github.com/dcdb/wintermute/internal/samplers"
)

// FootprintConfig parameterises experiment E5: the in-text resource
// footprint of a Pusher running monitoring plus ODA (paper §VI-A:
// "Average per-core CPU load of the Pusher is mostly uniform and peaks at
// 1.2%. Likewise, memory usage never exceeded 25MB").
type FootprintConfig struct {
	// NumSensors matches the paper's tester monitoring plugin (1000).
	NumSensors int
	// Queries per operator interval.
	Queries int
	// SampleInterval for sampling and the tester operator (paper: 1 s).
	SampleInterval time.Duration
	// Duration of the measurement window (wall clock).
	Duration time.Duration
}

// DefaultFootprint mirrors the paper's heaviest tester cell.
func DefaultFootprint() FootprintConfig {
	return FootprintConfig{
		NumSensors:     1000,
		Queries:        1000,
		SampleInterval: time.Second,
		Duration:       10 * time.Second,
	}
}

// FootprintResult reports the Pusher's resource usage.
type FootprintResult struct {
	HeapAllocMB   float64
	SysMB         float64
	Goroutines    int
	CPUPercent    float64 // process CPU over the window; -1 if unavailable
	PerCorePct    float64 // CPUPercent / NumCPU; -1 if unavailable
	SamplesTotal  uint64
	SamplesPerSec float64
}

// RunFootprint stands up a full Pusher (tester sampler + tester operator
// on live tickers) and measures heap, goroutines and process CPU across
// the window.
func RunFootprint(cfg FootprintConfig) (*FootprintResult, error) {
	p, err := pusher.New(pusher.Config{Name: "footprint"})
	if err != nil {
		return nil, err
	}
	if err := p.AddSampler(samplers.NewTester("t", "/node/", cfg.NumSensors, cfg.SampleInterval)); err != nil {
		return nil, err
	}
	// Warm the caches under a simulated clock.
	for ts := time.Now().Add(-60 * time.Second); ts.Before(time.Now()); ts = ts.Add(cfg.SampleInterval) {
		p.SampleOnce(ts)
	}
	inputs := make([]string, 0, cfg.NumSensors)
	for i := 0; i < cfg.NumSensors; i++ {
		inputs = append(inputs, fmt.Sprintf("test%d", i))
	}
	raw, err := json.Marshal(tester.Config{
		OperatorConfig: core.OperatorConfig{
			Name:       "tester-op",
			Inputs:     inputs,
			Outputs:    []string{"tester-readings"},
			Unit:       "/node/",
			IntervalMs: int(cfg.SampleInterval / time.Millisecond),
		},
		Queries:  cfg.Queries,
		WindowMs: 50000,
	})
	if err != nil {
		return nil, err
	}
	if err := p.Manager.LoadPlugin("tester", raw); err != nil {
		return nil, err
	}
	startSamples := p.Samples()
	cpu0, cpuOK := processCPUSeconds()
	start := time.Now()
	p.Start()
	time.Sleep(cfg.Duration)
	res := &FootprintResult{Goroutines: runtime.NumGoroutine()}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Stop()
	elapsed := time.Since(start).Seconds()
	res.HeapAllocMB = float64(ms.HeapAlloc) / (1 << 20)
	res.SysMB = float64(ms.Sys) / (1 << 20)
	res.SamplesTotal = p.Samples() - startSamples
	res.SamplesPerSec = float64(res.SamplesTotal) / elapsed
	res.CPUPercent = -1
	res.PerCorePct = -1
	if cpu1, ok := processCPUSeconds(); ok && cpuOK {
		res.CPUPercent = 100 * (cpu1 - cpu0) / elapsed
		res.PerCorePct = res.CPUPercent / float64(runtime.NumCPU())
	}
	return res, nil
}

// processCPUSeconds reads utime+stime of the current process from
// /proc/self/stat (Linux). ok is false elsewhere.
func processCPUSeconds() (float64, bool) {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, false
	}
	// Skip past the parenthesised command, which may contain spaces.
	s := string(b)
	i := strings.LastIndexByte(s, ')')
	if i < 0 || i+2 > len(s) {
		return 0, false
	}
	fields := strings.Fields(s[i+2:])
	// Fields after the command: state is index 0, utime is index 11,
	// stime index 12 (stat fields 14 and 15, 1-based).
	if len(fields) < 13 {
		return 0, false
	}
	utime, err1 := strconv.ParseFloat(fields[11], 64)
	stime, err2 := strconv.ParseFloat(fields[12], 64)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	const hz = 100 // USER_HZ on effectively all Linux systems
	return (utime + stime) / hz, true
}
