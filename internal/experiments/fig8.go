package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/ml/stats"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/plugins/clustering"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/cluster"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

// Fig8Config parameterises experiment E4 (Figure 8): Bayesian Gaussian
// mixture clustering of per-node 2-week aggregates of power, temperature
// and CPU idle time across the whole fleet.
type Fig8Config struct {
	// Nodes is the fleet size (paper: CooLMUC-3's 148 nodes).
	Nodes int
	// SampleInterval is the fleet sampling interval. The paper samples
	// at 10 s; coarser sampling is statistically equivalent for 2-week
	// aggregates and keeps memory bounded (see DESIGN.md).
	SampleInterval time.Duration
	// Window is the aggregation window (paper: 2 weeks).
	Window time.Duration
	// Groups define the long-term load mix of the fleet.
	Groups []Fig8Group
	// Anomalies implants this many degraded nodes drawing AnomalyFactor
	// times the healthy power at equal load (paper: one node at ~+20 %).
	Anomalies      int
	AnomalyFactor  float64
	MaxComponents  int
	OutlierDensity float64
	Seed           int64
}

// Fig8Group is one long-term behaviour class of the fleet.
type Fig8Group struct {
	Name string
	// Frac is the fraction of the fleet in this group.
	Frac float64
	// UtilMean is the group's mean long-term utilisation.
	UtilMean float64
	// UtilSpread is the node-to-node variation of mean utilisation.
	UtilSpread float64
}

// DefaultFig8 mirrors the paper's fleet: most nodes in a broad middle
// cluster, an idle-heavy cluster and a heavily-loaded cluster (the paper
// attributes the imbalance to a scheduling policy that does not balance
// workload between nodes).
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Nodes:          148,
		SampleInterval: 5 * time.Minute,
		Window:         14 * 24 * time.Hour,
		Groups: []Fig8Group{
			{Name: "idle-heavy", Frac: 0.2, UtilMean: 0.15, UtilSpread: 0.05},
			{Name: "normal", Frac: 0.6, UtilMean: 0.55, UtilSpread: 0.07},
			{Name: "loaded", Frac: 0.2, UtilMean: 0.92, UtilSpread: 0.04},
		},
		Anomalies:      1,
		AnomalyFactor:  1.2,
		MaxComponents:  8,
		OutlierDensity: 0.001,
		Seed:           31,
	}
}

// QuickFig8 is a scaled-down configuration for smoke runs and tests.
func QuickFig8() Fig8Config {
	cfg := DefaultFig8()
	cfg.Nodes = 90
	cfg.SampleInterval = 30 * time.Minute
	cfg.Window = 7 * 24 * time.Hour
	return cfg
}

// Fig8Point is one compute node in the clustered space.
type Fig8Point struct {
	Node     string
	Power    float64 // W, window average
	Temp     float64 // degC, window average
	IdleTime float64 // s, accumulated over the window
	Label    int     // cluster label; clustering.OutlierLabel for outliers
	Implant  bool    // true for implanted anomalies
}

// Fig8Result is the outcome of the fleet clustering.
type Fig8Result struct {
	Points        []Fig8Point
	NumClusters   int
	Outliers      int
	CorrPowerTemp float64
	CorrPowerIdle float64
	// ImplantFlagged reports how many implanted anomalies were labelled
	// outliers.
	ImplantFlagged int
}

// profileApp drives a node at a fixed long-term utilisation with slow
// wander, standing in for the aggregate of weeks of real job activity.
type profileApp struct {
	util  float64
	seed  uint64
	phase float64
}

// Name implements workload.App.
func (a profileApp) Name() string { return "profile" }

// Duration implements workload.App.
func (a profileApp) Duration() float64 { return math.Inf(1) }

// Util implements workload.App: slow sinusoidal wander around the mean.
func (a profileApp) Util(t float64) float64 {
	u := a.util + 0.08*math.Sin(2*math.Pi*(t/86400+a.phase))
	if u < 0.02 {
		u = 0.02
	}
	if u > 0.99 {
		u = 0.99
	}
	return u
}

// CPI implements workload.App.
func (a profileApp) CPI(core int, t float64) float64 { return 2 }

// FlopFrac implements workload.App.
func (a profileApp) FlopFrac(core int, t float64) float64 { return 0.2 }

// VectorRatio implements workload.App.
func (a profileApp) VectorRatio(core int, t float64) float64 { return 0.4 }

var _ workload.App = profileApp{}

// RunFig8 simulates weeks of fleet-wide monitoring and then runs the
// clustering operator exactly as deployed in the Collect Agent.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("fig8: no groups configured")
	}
	nav := navigator.New()
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	capacity := int(cfg.Window/cfg.SampleInterval) + 2
	sink := core.NewCacheSink(caches, nav, capacity, cfg.SampleInterval)

	topo := cluster.Topology{
		Racks: 4, ChassisPerRack: 4, NodesPerChassis: (cfg.Nodes + 15) / 16,
		CoresPerNode: 1, MaxNodes: cfg.Nodes,
	}
	paths := topo.NodePaths()

	// Assign groups and implant anomalies deterministically.
	rng := newSplitRand(cfg.Seed)
	type nodeRT struct {
		node    *hardware.Node
		path    sensor.Topic
		implant bool
	}
	var rts []*nodeRT
	idx := 0
	for g, group := range cfg.Groups {
		count := int(group.Frac*float64(cfg.Nodes) + 0.5)
		if g == len(cfg.Groups)-1 {
			count = cfg.Nodes - idx
		}
		for i := 0; i < count && idx < cfg.Nodes; i++ {
			util := group.UtilMean + (rng.float()*2-1)*group.UtilSpread
			h := hardware.NewNode(hardware.Config{Cores: 1, Seed: cfg.Seed + int64(idx)})
			h.SetApp(profileApp{util: util, seed: uint64(idx), phase: rng.float()}, 0)
			rts = append(rts, &nodeRT{node: h, path: paths[idx]})
			idx++
		}
	}
	// Implants go into the idle-heavy group (the paper's outlier consumes
	// ~20% more power than nodes with similar idle time).
	for i := 0; i < cfg.Anomalies && i < len(rts); i++ {
		rts[i].node.SetPowerFactor(cfg.AnomalyFactor)
		rts[i].implant = true
	}
	for _, rt := range rts {
		for _, s := range []string{"power", "temp", "idle-time"} {
			if err := nav.AddSensor(rt.path.Join(s)); err != nil {
				return nil, err
			}
		}
	}

	// Simulate the aggregation window.
	steps := int(cfg.Window / cfg.SampleInterval)
	for step := 0; step <= steps; step++ {
		ns := int64(step) * int64(cfg.SampleInterval)
		for _, rt := range rts {
			rt.node.Advance(ns)
			sink.PushBatch([]core.Output{
				{Topic: rt.path.Join("power"), Reading: sensor.Reading{Value: rt.node.Power(), Time: ns}},
				{Topic: rt.path.Join("temp"), Reading: sensor.Reading{Value: rt.node.Temp(), Time: ns}},
				{Topic: rt.path.Join("idle-time"), Reading: sensor.Reading{Value: rt.node.IdleSeconds(), Time: ns}},
			})
		}
	}

	op, err := clustering.New(clustering.Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "fleet-clustering",
			Inputs:  []string{"power", "temp", "idle-time"},
			Outputs: []string{"<bottomup>cluster-label"},
		},
		WindowMs:         int(cfg.Window / time.Millisecond),
		Counters:         []string{"idle-time"},
		MaxComponents:    cfg.MaxComponents,
		OutlierThreshold: cfg.OutlierDensity,
		Seed:             cfg.Seed,
	}, qe)
	if err != nil {
		return nil, err
	}
	endNs := int64(steps) * int64(cfg.SampleInterval)
	if _, err := op.ComputeBatch(qe, time.Unix(0, endNs)); err != nil {
		return nil, err
	}
	cres := op.LastResult()

	res := &Fig8Result{
		NumClusters: cres.Model.NumActive(),
		Outliers:    cres.Outliers,
	}
	implantByPath := map[sensor.Topic]bool{}
	for _, rt := range rts {
		implantByPath[rt.path] = rt.implant
	}
	var powers, temps, idles []float64
	for i, unitName := range cres.Units {
		pt := Fig8Point{
			Node:     string(unitName),
			Power:    cres.Points[i][0],
			Temp:     cres.Points[i][1],
			IdleTime: cres.Points[i][2],
			Label:    cres.Labels[i],
			Implant:  implantByPath[unitName],
		}
		if pt.Implant && pt.Label == clustering.OutlierLabel {
			res.ImplantFlagged++
		}
		res.Points = append(res.Points, pt)
		powers = append(powers, pt.Power)
		temps = append(temps, pt.Temp)
		idles = append(idles, pt.IdleTime)
	}
	res.CorrPowerTemp = stats.Pearson(powers, temps)
	res.CorrPowerIdle = stats.Pearson(powers, idles)
	return res, nil
}

// splitRand is a tiny deterministic RNG for experiment setup, independent
// of math/rand ordering guarantees.
type splitRand struct{ s uint64 }

func newSplitRand(seed int64) *splitRand { return &splitRand{s: uint64(seed)*2862933555777941757 + 1} }

func (r *splitRand) float() float64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
