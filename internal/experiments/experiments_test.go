package experiments

import (
	"math"
	"testing"
	"time"
)

func TestKernelRuns(t *testing.T) {
	d, sum := RunKernel(KernelConfig{N: 64, Iters: 2})
	if d <= 0 {
		t.Fatal("kernel took no time")
	}
	if sum == 0 || math.IsNaN(sum) {
		t.Fatalf("checksum = %v", sum)
	}
	// Deterministic checksum.
	_, sum2 := RunKernel(KernelConfig{N: 64, Iters: 2})
	if sum != sum2 {
		t.Fatalf("kernel not deterministic: %v vs %v", sum, sum2)
	}
}

func TestKernelDefaults(t *testing.T) {
	d, _ := RunKernel(KernelConfig{})
	if d <= 0 {
		t.Fatal("default kernel failed")
	}
}

// TestFig5Smoke runs a tiny overhead grid end to end: the absolute claim
// ("overhead below 0.5% in all cases") needs a quiet dedicated machine,
// but the harness must produce a complete, finite grid.
func TestFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	cfg := QuickFig5()
	cfg.Queries = []int{2, 50}
	cfg.WindowsMs = []int{0, 10000}
	cfg.NumSensors = 100
	cfg.Warmup = 20 * time.Second
	cfg.Kernel = KernelConfig{N: 128, Iters: 2}
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline <= 0 {
		t.Fatal("no baseline")
	}
	if len(res.Absolute) != 4 || len(res.Relative) != 4 {
		t.Fatalf("grid sizes = %d/%d", len(res.Absolute), len(res.Relative))
	}
	for _, cells := range [][]Fig5Cell{res.Absolute, res.Relative} {
		for _, c := range cells {
			if math.IsNaN(c.OverheadPc) || c.OverheadPc < 0 {
				t.Fatalf("bad cell %+v", c)
			}
			if c.TickCost <= 0 || c.BoundPc <= 0 {
				t.Fatalf("missing analytical measurement in %+v", c)
			}
			// The paper's overhead envelope: the analytical bound must be
			// far below 0.5% per cell even on small machines.
			if c.BoundPc > 0.5 {
				t.Fatalf("analytical bound %v%% exceeds the paper's envelope", c.BoundPc)
			}
		}
	}
	if _, ok := res.Cell(true, 2, 0); !ok {
		t.Error("Cell lookup failed")
	}
	if _, ok := res.Cell(false, 999, 0); ok {
		t.Error("Cell lookup should miss")
	}
	_ = res.MaxOverhead()
}

// TestFig6Shape asserts the paper's qualitative power-prediction result
// on a scaled-down run: training completes, the predicted series tracks
// the real one, and the average relative error is in the single-digit
// band (paper: 6.2%).
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	cfg := QuickFig6()
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainSteps == 0 || res.EvalSteps < cfg.EvalSteps {
		t.Fatalf("training/eval incomplete: %d/%d", res.TrainSteps, res.EvalSteps)
	}
	if res.AvgRelError <= 0 || res.AvgRelError > 0.15 {
		t.Errorf("avg rel error = %.3f, want single-digit percent band", res.AvgRelError)
	}
	if len(res.Series) == 0 {
		t.Fatal("no time series excerpt")
	}
	// The prediction must track the real series: mean absolute gap well
	// below the signal's dynamic range (~80-220 W).
	var gap, real float64
	for _, p := range res.Series {
		gap += math.Abs(p.Real - p.Pred)
		real += p.Real
	}
	gap /= float64(len(res.Series))
	real /= float64(len(res.Series))
	if gap > 0.2*real {
		t.Errorf("mean |real-pred| = %.1f W at mean power %.1f W", gap, real)
	}
	// Error profile bins populated and probabilities sum to ~1.
	var prob float64
	for _, b := range res.Bins {
		prob += b.Probability
	}
	if math.Abs(prob-1) > 1e-6 {
		t.Errorf("bin probabilities sum to %v", prob)
	}
}

// TestFig7Shapes asserts the four per-application CPI-decile signatures
// of Figure 7 on a scaled-down pipeline run.
func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	res, err := RunFig7(QuickFig7())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"lammps", "amg", "kripke", "nekbone"} {
		if len(res.PerApp[app]) < 5 {
			t.Fatalf("%s: only %d rows", app, len(res.PerApp[app]))
		}
	}
	// LAMMPS: low CPI (~1.6) and tight spread everywhere.
	for _, row := range res.PerApp["lammps"] {
		if row.Deciles[5] < 1.2 || row.Deciles[5] > 2.2 {
			t.Errorf("lammps median = %v at t=%v", row.Deciles[5], row.T)
		}
		if row.Deciles[10]-row.Deciles[0] > 1.5 {
			t.Errorf("lammps spread = %v at t=%v", row.Deciles[10]-row.Deciles[0], row.T)
		}
	}
	// AMG: low median but top decile spiking high (paper: up to ~30).
	var amgMaxTop, amgMaxMedian float64
	for _, row := range res.PerApp["amg"] {
		amgMaxTop = math.Max(amgMaxTop, row.Deciles[10])
		amgMaxMedian = math.Max(amgMaxMedian, row.Deciles[5])
	}
	if amgMaxMedian > 5 {
		t.Errorf("amg median max = %v, want low", amgMaxMedian)
	}
	if amgMaxTop < 10 {
		t.Errorf("amg top decile max = %v, want heavy spikes", amgMaxTop)
	}
	// Kripke: median oscillates with the iteration ramp.
	var kMin, kMax = math.Inf(1), math.Inf(-1)
	for _, row := range res.PerApp["kripke"] {
		kMin = math.Min(kMin, row.Deciles[5])
		kMax = math.Max(kMax, row.Deciles[5])
	}
	if kMax-kMin < 5 {
		t.Errorf("kripke median range = %v, want per-iteration ramps", kMax-kMin)
	}
	// Nekbone: spread grows dramatically in the second half.
	rows := res.PerApp["nekbone"]
	half := rows[0].T + (rows[len(rows)-1].T-rows[0].T)/2
	var early, late, nEarly, nLate float64
	for _, row := range rows {
		spread := row.Deciles[10] - row.Deciles[5]
		if row.T < half {
			early += spread
			nEarly++
		} else {
			late += spread
			nLate++
		}
	}
	if nEarly == 0 || nLate == 0 {
		t.Fatal("nekbone rows not split")
	}
	if late/nLate < 3*(early/nEarly+0.1) {
		t.Errorf("nekbone spread early %.2f late %.2f, want late >> early",
			early/nEarly, late/nLate)
	}
}

// TestFig8Shape asserts the fleet-clustering result: around three
// clusters, strong power/temp correlation, anticorrelated idle time, and
// the implanted degraded node flagged as an outlier.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	res, err := RunFig8(QuickFig8())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 90 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.NumClusters < 3 || res.NumClusters > 4 {
		t.Errorf("clusters = %d, want ~3", res.NumClusters)
	}
	if res.CorrPowerTemp < 0.9 {
		t.Errorf("power/temp correlation = %v, want strong (paper: clear linear trend)", res.CorrPowerTemp)
	}
	if res.CorrPowerIdle > -0.8 {
		t.Errorf("power/idle correlation = %v, want strongly negative", res.CorrPowerIdle)
	}
	if res.ImplantFlagged < 1 {
		t.Errorf("implanted anomaly not flagged (outliers=%d)", res.Outliers)
	}
	if res.Outliers > len(res.Points)/10 {
		t.Errorf("too many outliers: %d", res.Outliers)
	}
	// Power range matches the CooLMUC-3 envelope of Figure 8 (~80-200 W).
	for _, p := range res.Points {
		if p.Power < 60 || p.Power > 280 {
			t.Errorf("node %s power %v outside plausible envelope", p.Node, p.Power)
		}
	}
}

func TestFootprintSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	cfg := DefaultFootprint()
	cfg.NumSensors = 200
	cfg.Queries = 100
	cfg.SampleInterval = 100 * time.Millisecond
	cfg.Duration = 1 * time.Second
	res, err := RunFootprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesTotal == 0 {
		t.Error("no samples collected")
	}
	if res.HeapAllocMB <= 0 {
		t.Error("no heap measurement")
	}
	if res.Goroutines <= 0 {
		t.Error("no goroutine count")
	}
}

func TestProcessCPUSeconds(t *testing.T) {
	v, ok := processCPUSeconds()
	if ok && v < 0 {
		t.Errorf("cpu seconds = %v", v)
	}
}
