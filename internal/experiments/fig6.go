package experiments

import (
	"fmt"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/ml/stats"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/plugins/regressor"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

// Fig6Config parameterises experiment E2 (Figure 6): online random-forest
// prediction of next-interval node power while CORAL-2 applications run.
type Fig6Config struct {
	// IntervalMs is the sampling and regression interval (paper: 250 ms,
	// with 125 ms and 500 ms variants reported in-text).
	IntervalMs int
	// TrainingSetSize is the number of feature vectors accumulated before
	// training (paper: 30k; scaled down by default for runtime).
	TrainingSetSize int
	// EvalSteps is the number of online evaluation steps after training.
	EvalSteps int
	// Apps is the sequence of applications cycled on the node (paper:
	// Kripke, AMG, Nekbone, LAMMPS), each run for AppDurationS seconds.
	Apps         []string
	AppDurationS float64
	Trees        int
	MaxDepth     int
	Seed         int64
	// SeriesSpanS bounds the time-series excerpt returned (Figure 6a).
	SeriesSpanS float64
}

// DefaultFig6 mirrors the paper's setup with a tractable training size.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		IntervalMs:      250,
		TrainingSetSize: 12000,
		EvalSteps:       6000,
		Apps:            []string{"kripke", "amg", "nekbone", "lammps"},
		AppDurationS:    300,
		Trees:           32,
		MaxDepth:        12,
		Seed:            11,
		SeriesSpanS:     400,
	}
}

// QuickFig6 is a scaled-down configuration for smoke runs and tests.
func QuickFig6() Fig6Config {
	cfg := DefaultFig6()
	cfg.TrainingSetSize = 2500
	cfg.EvalSteps = 1500
	cfg.AppDurationS = 120
	cfg.Trees = 16
	return cfg
}

// Fig6Point is one step of the real-vs-predicted time series (Figure 6a).
type Fig6Point struct {
	T    float64 // seconds since start of evaluation
	Real float64 // measured power, W
	Pred float64 // power predicted one interval earlier, W
}

// Fig6Bin is one bar of the per-power-bin error profile (Figure 6b).
type Fig6Bin struct {
	PowerLo, PowerHi float64
	MeanRelErr       float64
	Probability      float64 // fraction of samples in this bin (the PDF)
	Count            int
}

// Fig6Result is the outcome of one prediction run.
type Fig6Result struct {
	IntervalMs  int
	AvgRelError float64
	Series      []Fig6Point
	Bins        []Fig6Bin
	TrainSteps  int
	EvalSteps   int
}

// RunFig6 executes the power-prediction case study under a simulated
// clock: a hardware node cycles through the configured applications while
// a Pusher-style loop samples power, temperature and aggregate counters
// and a regressor operator learns and then predicts online.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	interval := time.Duration(cfg.IntervalMs) * time.Millisecond
	if interval <= 0 {
		return nil, fmt.Errorf("fig6: non-positive interval")
	}
	nav := navigator.New()
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	// Caches sized like the paper's Pusher (180 s retention).
	capacity := int(180 * time.Second / interval)
	sink := core.NewCacheSink(caches, nav, capacity, interval)

	// Power instrumentation at sub-second scale is noisy (electrical and
	// sensor noise plus Turbo excursions, §VI-B); the defaults model the
	// smoother time-averaged telemetry of the fleet experiments, so the
	// prediction node gets the noisier fine-grained calibration.
	node := hardware.NewNode(hardware.Config{
		Cores:      8,
		Seed:       cfg.Seed,
		NoisePower: 9,
		TurboProb:  0.06,
		TurboBoost: 30,
	})
	nodePath := sensor.Topic("/r01/c01/s01/")
	sensors := []string{"power", "temp", "cycles-rate", "instr-rate"}
	for _, s := range sensors {
		if err := nav.AddSensor(nodePath.Join(s)); err != nil {
			return nil, err
		}
	}

	op, err := regressor.New(regressor.Config{
		OperatorConfig: core.OperatorConfig{
			Name:       "power-regressor",
			Inputs:     sensors,
			Outputs:    []string{"power-pred", "power-pred-err"},
			Unit:       string(nodePath),
			IntervalMs: cfg.IntervalMs,
		},
		Target:          "power",
		TrainingSetSize: cfg.TrainingSetSize,
		Trees:           cfg.Trees,
		MaxDepth:        cfg.MaxDepth,
		Seed:            cfg.Seed,
	}, qe)
	if err != nil {
		return nil, err
	}

	res := &Fig6Result{IntervalMs: cfg.IntervalMs}
	hist := newBinSet(72, 312, 20)
	var prevCycles, prevInstr float64
	var pendingPred float64
	var hasPending bool
	appIdx := -1
	var app workload.App
	step := 0
	var evalStart float64

	for {
		tSec := float64(step) * interval.Seconds()
		ns := int64(tSec * 1e9)
		now := time.Unix(0, ns)
		// Rotate applications.
		if idx := int(tSec/cfg.AppDurationS) % len(cfg.Apps); idx != appIdx || app == nil {
			appIdx = idx
			app = workload.MustNew(cfg.Apps[appIdx], cfg.Seed+int64(appIdx)+int64(tSec), cfg.AppDurationS)
			node.SetApp(app, ns)
		}
		node.Advance(ns)
		// Sample node sensors: power, temperature and aggregate counter
		// rates over all cores.
		var cycles, instr float64
		for c := 0; c < node.Cores(); c++ {
			cy, in, _, _, _ := node.CoreCounters(c)
			cycles += cy
			instr += in
		}
		sink.PushBatch([]core.Output{
			{Topic: nodePath.Join("power"), Reading: sensor.Reading{Value: node.Power(), Time: ns}},
			{Topic: nodePath.Join("temp"), Reading: sensor.Reading{Value: node.Temp(), Time: ns}},
			{Topic: nodePath.Join("cycles-rate"), Reading: sensor.Reading{Value: (cycles - prevCycles) / interval.Seconds(), Time: ns}},
			{Topic: nodePath.Join("instr-rate"), Reading: sensor.Reading{Value: (instr - prevInstr) / interval.Seconds(), Time: ns}},
		})
		prevCycles, prevInstr = cycles, instr

		// Record the realisation of the previous step's prediction.
		if hasPending {
			real := node.Power()
			rel := stats.RelativeError(pendingPred, real)
			hist.add(real, rel)
			if tSec-evalStart <= cfg.SeriesSpanS {
				res.Series = append(res.Series, Fig6Point{T: tSec - evalStart, Real: real, Pred: pendingPred})
			}
			hasPending = false
		}

		if err := core.Tick(op, qe, sink, now); err != nil {
			return nil, err
		}
		if op.Trained() {
			if res.TrainSteps == 0 {
				res.TrainSteps = step
				evalStart = tSec
			}
			if r, ok := qe.Latest(nodePath.Join("power-pred")); ok && r.Time == ns {
				pendingPred = r.Value
				hasPending = true
			}
			res.EvalSteps++
			if res.EvalSteps >= cfg.EvalSteps {
				break
			}
		}
		step++
		if step > cfg.TrainingSetSize*4+cfg.EvalSteps+1000 {
			return nil, fmt.Errorf("fig6: training did not converge after %d steps", step)
		}
	}
	res.AvgRelError = op.AvgRelError()
	res.Bins = hist.bins()
	return res, nil
}

// binSet accumulates the per-power-bin error profile of Figure 6b.
type binSet struct {
	lo, hi float64
	n      int
	count  []int
	relSum []float64
	total  int
}

func newBinSet(lo, hi float64, n int) *binSet {
	return &binSet{lo: lo, hi: hi, n: n, count: make([]int, n), relSum: make([]float64, n)}
}

func (b *binSet) add(power, relErr float64) {
	i := int((power - b.lo) / (b.hi - b.lo) * float64(b.n))
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		i = b.n - 1
	}
	b.count[i]++
	b.relSum[i] += relErr
	b.total++
}

func (b *binSet) bins() []Fig6Bin {
	out := make([]Fig6Bin, 0, b.n)
	w := (b.hi - b.lo) / float64(b.n)
	for i := 0; i < b.n; i++ {
		bin := Fig6Bin{
			PowerLo: b.lo + float64(i)*w,
			PowerHi: b.lo + float64(i+1)*w,
			Count:   b.count[i],
		}
		if b.count[i] > 0 {
			bin.MeanRelErr = b.relSum[i] / float64(b.count[i])
			bin.Probability = float64(b.count[i]) / float64(b.total)
		}
		out = append(out, bin)
	}
	return out
}
