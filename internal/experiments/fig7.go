package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/plugins/perfmetrics"
	"github.com/dcdb/wintermute/internal/plugins/persyst"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/cluster"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/jobs"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

// Fig7Config parameterises experiment E3 (Figure 7): per-job CPI decile
// time series through the perfmetrics -> persyst pipeline.
type Fig7Config struct {
	// NodesPerJob and CoresPerNode size each job (paper: 32 nodes x 64
	// cores = 2048 samples per decile computation).
	NodesPerJob  int
	CoresPerNode int
	// IntervalMs is the sampling and computation interval (paper: 1 s).
	IntervalMs int
	// Durations maps application name to run length in seconds,
	// approximating the x-axis spans of Figure 7.
	Durations map[string]float64
	// SampleEveryS is the spacing of recorded decile rows.
	SampleEveryS float64
	Seed         int64
}

// DefaultFig7 mirrors the paper's four jobs.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		NodesPerJob:  32,
		CoresPerNode: 64,
		IntervalMs:   1000,
		Durations: map[string]float64{
			"lammps":  650,
			"amg":     550,
			"kripke":  480,
			"nekbone": 850,
		},
		SampleEveryS: 5,
		Seed:         21,
	}
}

// QuickFig7 is a scaled-down configuration for smoke runs and tests.
func QuickFig7() Fig7Config {
	cfg := DefaultFig7()
	cfg.NodesPerJob = 4
	cfg.CoresPerNode = 16
	cfg.Durations = map[string]float64{
		"lammps":  120,
		"amg":     120,
		"kripke":  120,
		"nekbone": 240,
	}
	return cfg
}

// Fig7Row is one recorded time point of a job's CPI deciles.
type Fig7Row struct {
	T       float64
	Deciles [11]float64
}

// Fig7Result maps application name to its decile time series.
type Fig7Result struct {
	PerApp map[string][]Fig7Row
}

// RunFig7 builds the full two-stage pipeline of the paper's case study 2:
// per-core counters flow into a perfmetrics operator (one unit per CPU
// core, as configured in the paper) whose CPI outputs are aggregated into
// per-job deciles by a persyst job operator. Everything runs under a
// simulated clock.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	interval := time.Duration(cfg.IntervalMs) * time.Millisecond
	nav := navigator.New()
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	// Counter caches only need the differentiation window; CPI output
	// caches only the latest values. A small capacity keeps the
	// 8k-core experiment within a modest memory budget.
	sink := core.NewCacheSink(caches, nav, 4, interval)

	apps := make([]string, 0, len(cfg.Durations))
	for name := range cfg.Durations {
		apps = append(apps, name)
	}
	// Deterministic order for reproducibility.
	for i := 1; i < len(apps); i++ {
		for j := i; j > 0 && apps[j] < apps[j-1]; j-- {
			apps[j], apps[j-1] = apps[j-1], apps[j]
		}
	}

	topo := cluster.Topology{
		Racks:           len(apps),
		ChassisPerRack:  1,
		NodesPerChassis: cfg.NodesPerJob,
		CoresPerNode:    cfg.CoresPerNode,
	}
	nodePaths := topo.NodePaths()
	if len(nodePaths) != len(apps)*cfg.NodesPerJob {
		return nil, fmt.Errorf("fig7: topology mismatch")
	}

	table := jobs.NewTable()
	type nodeRT struct {
		node *hardware.Node
		path sensor.Topic
		cpus []sensor.Topic
	}
	var rts []*nodeRT
	var maxDur float64
	for a, appName := range apps {
		dur := cfg.Durations[appName]
		if dur > maxDur {
			maxDur = dur
		}
		jobNodes := nodePaths[a*cfg.NodesPerJob : (a+1)*cfg.NodesPerJob]
		table.Add(core.Job{
			ID:    appName, // job named after its application for reporting
			User:  "user" + appName,
			Nodes: append([]sensor.Topic(nil), jobNodes...),
			Start: 0,
			End:   int64(dur * 1e9),
		})
		for n, path := range jobNodes {
			h := hardware.NewNode(hardware.Config{
				Cores: cfg.CoresPerNode,
				Seed:  cfg.Seed + int64(a*1000+n),
			})
			h.SetApp(workload.MustNew(appName, cfg.Seed+int64(a*1000+n), dur), 0)
			rt := &nodeRT{node: h, path: path, cpus: topo.CPUPaths(path)}
			rts = append(rts, rt)
			for _, cp := range rt.cpus {
				for _, s := range []string{"cpu-cycles", "instructions"} {
					if err := nav.AddSensor(cp.Join(s)); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	pm, err := perfmetrics.New(perfmetrics.Config{
		OperatorConfig: core.OperatorConfig{
			Name:       "perfmetrics",
			Inputs:     []string{"<bottomup>cpu-cycles", "<bottomup>instructions"},
			Outputs:    []string{"<bottomup>cpi"},
			IntervalMs: cfg.IntervalMs,
			Parallel:   true,
		},
		WindowMs: 2 * cfg.IntervalMs,
	}, qe)
	if err != nil {
		return nil, err
	}
	ps, err := persyst.New(persyst.Config{
		Metric:     "cpi",
		IntervalMs: cfg.IntervalMs,
	}, qe, core.Env{Jobs: table})
	if err != nil {
		return nil, err
	}

	res := &Fig7Result{PerApp: make(map[string][]Fig7Row)}
	steps := int(maxDur / interval.Seconds())
	lastSample := make(map[string]float64)
	for step := 0; step <= steps; step++ {
		tSec := float64(step) * interval.Seconds()
		ns := int64(tSec * 1e9)
		now := time.Unix(0, ns)
		// Advance hardware and publish counters, parallel over nodes.
		var wg sync.WaitGroup
		for _, rt := range rts {
			wg.Add(1)
			go func(rt *nodeRT) {
				defer wg.Done()
				rt.node.Advance(ns)
				outs := make([]core.Output, 0, 2*len(rt.cpus))
				for c, cp := range rt.cpus {
					cy, in, _, _, _ := rt.node.CoreCounters(c)
					outs = append(outs,
						core.Output{Topic: cp.Join("cpu-cycles"), Reading: sensor.Reading{Value: cy, Time: ns}},
						core.Output{Topic: cp.Join("instructions"), Reading: sensor.Reading{Value: in, Time: ns}})
				}
				sink.PushBatch(outs)
			}(rt)
		}
		wg.Wait()
		if step < 2 {
			continue // differentiation warm-up
		}
		if err := core.Tick(pm, qe, sink, now); err != nil {
			return nil, err
		}
		if err := core.Tick(ps, qe, sink, now); err != nil {
			return nil, err
		}
		// Record decile rows for running jobs at the configured spacing.
		for _, job := range table.RunningJobs(ns) {
			if tSec-lastSample[job.ID] < cfg.SampleEveryS && lastSample[job.ID] != 0 {
				continue
			}
			lastSample[job.ID] = tSec
			var row Fig7Row
			row.T = tSec
			complete := true
			for d := 0; d <= 10; d++ {
				topic := sensor.Topic(fmt.Sprintf("/jobs/%s/cpi-dec%d", job.ID, d))
				r, ok := qe.Latest(topic)
				if !ok {
					complete = false
					break
				}
				row.Deciles[d] = r.Value
			}
			if complete {
				res.PerApp[job.ID] = append(res.PerApp[job.ID], row)
			}
		}
	}
	return res, nil
}
