package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/plugins/tester"
	"github.com/dcdb/wintermute/internal/pusher"
	"github.com/dcdb/wintermute/internal/samplers"
)

// Fig5Config parameterises experiment E1 (Figure 5): the runtime overhead
// of the Query Engine on a CPU-saturating benchmark, as a function of the
// number of queries per interval and the temporal range of each query, in
// absolute and relative query modes.
type Fig5Config struct {
	// Queries are the per-interval query counts (paper: 2..1000).
	Queries []int
	// WindowsMs are the query temporal ranges in ms (paper: 0..100000;
	// 0 retrieves only the most recent value).
	WindowsMs []int
	// NumSensors is the size of the tester monitoring plugin (paper:
	// 1000 monotonic sensors).
	NumSensors int
	// SampleInterval is the sampling and operator interval (paper: 1 s).
	SampleInterval time.Duration
	// CacheRetention is the sensor-cache span (paper: 180 s).
	CacheRetention time.Duration
	// Warmup fills caches for this simulated span before measuring.
	Warmup time.Duration
	// Kernel is the HPL stand-in; Repeats runs per cell, median taken.
	Kernel  KernelConfig
	Repeats int
}

// DefaultFig5 mirrors the paper's grid.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Queries:        []int{2, 10, 100, 500, 1000},
		WindowsMs:      []int{0, 12500, 25000, 50000, 100000},
		NumSensors:     1000,
		SampleInterval: time.Second,
		CacheRetention: 180 * time.Second,
		Warmup:         180 * time.Second,
		Kernel:         DefaultKernel(),
		Repeats:        3,
	}
}

// QuickFig5 is a scaled-down grid for smoke runs and tests.
func QuickFig5() Fig5Config {
	return Fig5Config{
		Queries:        []int{2, 100},
		WindowsMs:      []int{0, 25000},
		NumSensors:     200,
		SampleInterval: 250 * time.Millisecond,
		CacheRetention: 60 * time.Second,
		Warmup:         60 * time.Second,
		Kernel:         KernelConfig{N: 192, Iters: 4},
		Repeats:        1,
	}
}

// Fig5Cell is one heatmap cell.
type Fig5Cell struct {
	Queries  int
	WindowMs int
	// OverheadPc is the measured percentage increase of the kernel's
	// runtime with the Pusher active. On shared or small machines this
	// measurement is dominated by scheduling noise; the paper measured it
	// on dedicated 64-core nodes.
	OverheadPc float64
	// TickCost is the directly-measured CPU time of one operator
	// computation interval (all queries) — noise-free.
	TickCost time.Duration
	// BoundPc is the analytical overhead bound implied by TickCost: the
	// fraction of one core the operator consumes per interval, spread
	// over the machine's cores. It is the apples-to-apples counterpart
	// of the paper's heatmap values.
	BoundPc float64
}

// Fig5Result holds both heatmaps plus the baseline runtime.
type Fig5Result struct {
	Baseline time.Duration
	Absolute []Fig5Cell
	Relative []Fig5Cell
}

// Cell returns the overhead of the (queries, windowMs) cell in the given
// mode, and whether it exists.
func (r *Fig5Result) Cell(absolute bool, queries, windowMs int) (float64, bool) {
	cells := r.Relative
	if absolute {
		cells = r.Absolute
	}
	for _, c := range cells {
		if c.Queries == queries && c.WindowMs == windowMs {
			return c.OverheadPc, true
		}
	}
	return 0, false
}

// MaxOverhead returns the largest overhead across both heatmaps.
func (r *Fig5Result) MaxOverhead() float64 {
	max := 0.0
	for _, cs := range [][]Fig5Cell{r.Absolute, r.Relative} {
		for _, c := range cs {
			if c.OverheadPc > max {
				max = c.OverheadPc
			}
		}
	}
	return max
}

// RunFig5 measures the overhead grid. For each cell a Pusher is stood up
// with the tester monitoring plugin (NumSensors monotonic sensors) and a
// tester operator issuing the cell's query load. Two measurements are
// taken: (1) the directly-timed cost of one operator interval, from which
// an analytical overhead bound follows; and (2) the wall-clock overhead of
// the compute kernel with the live Pusher active, using interleaved
// baseline/active pairs so slow machine drift cancels.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	baseline := medianKernel(cfg.Kernel, cfg.Repeats)
	res := &Fig5Result{Baseline: baseline}
	for _, absolute := range []bool{false, true} {
		for _, w := range cfg.WindowsMs {
			for _, q := range cfg.Queries {
				cell, err := measureCell(cfg, q, w, absolute)
				if err != nil {
					return nil, err
				}
				if absolute {
					res.Absolute = append(res.Absolute, cell)
				} else {
					res.Relative = append(res.Relative, cell)
				}
			}
		}
	}
	return res, nil
}

func medianKernel(k KernelConfig, repeats int) time.Duration {
	if repeats < 1 {
		repeats = 1
	}
	ds := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		d, _ := RunKernel(k)
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// measureCell stands up the Pusher for one grid cell and takes both the
// analytical and the wall-clock measurement.
func measureCell(cfg Fig5Config, queries, windowMs int, absolute bool) (Fig5Cell, error) {
	cell := Fig5Cell{Queries: queries, WindowMs: windowMs}
	p, err := pusher.New(pusher.Config{Name: "fig5", CacheRetention: cfg.CacheRetention})
	if err != nil {
		return cell, err
	}
	sampler := samplers.NewTester("tester-mon", "/node/", cfg.NumSensors, cfg.SampleInterval)
	if err := p.AddSampler(sampler); err != nil {
		return cell, err
	}
	// Pre-fill caches to steady state under a simulated clock so every
	// cell queries fully-populated caches, as in the paper (the cluster
	// had been monitoring continuously).
	start := time.Now().Add(-cfg.Warmup)
	for ts := start; ts.Before(time.Now()); ts = ts.Add(cfg.SampleInterval) {
		p.SampleOnce(ts)
	}
	// Tester operator: round-robin inputs over all monitored sensors.
	inputs := make([]string, 0, cfg.NumSensors)
	for i := 0; i < cfg.NumSensors; i++ {
		inputs = append(inputs, fmt.Sprintf("test%d", i))
	}
	opCfg := tester.Config{
		OperatorConfig: core.OperatorConfig{
			Name:       "tester-op",
			Inputs:     inputs,
			Outputs:    []string{"tester-readings"},
			Unit:       "/node/",
			IntervalMs: int(cfg.SampleInterval / time.Millisecond),
		},
		Queries:  queries,
		WindowMs: windowMs,
		Absolute: absolute,
	}
	raw, err := json.Marshal(opCfg)
	if err != nil {
		return cell, err
	}
	if err := p.Manager.LoadPlugin("tester", raw); err != nil {
		return cell, err
	}
	// Analytical bound: time one full operator interval directly.
	const tickReps = 5
	tickStart := time.Now()
	for i := 0; i < tickReps; i++ {
		if err := p.Manager.TickAll(time.Now()); err != nil {
			return cell, err
		}
	}
	cell.TickCost = time.Since(tickStart) / tickReps
	cell.BoundPc = 100 * cell.TickCost.Seconds() / cfg.SampleInterval.Seconds() /
		float64(runtime.GOMAXPROCS(0))
	// Wall-clock overhead with the live Pusher, interleaved with fresh
	// baselines so machine-level drift cancels.
	p.Start()
	defer p.Stop()
	overheads := make([]float64, 0, cfg.Repeats)
	for i := 0; i < cfg.Repeats; i++ {
		active, _ := RunKernel(cfg.Kernel)
		p.Stop()
		base, _ := RunKernel(cfg.Kernel)
		p.Start()
		overheads = append(overheads, 100*(active.Seconds()-base.Seconds())/base.Seconds())
	}
	sort.Float64s(overheads)
	cell.OverheadPc = overheads[len(overheads)/2]
	if cell.OverheadPc < 0 {
		cell.OverheadPc = 0 // measurement noise floor
	}
	return cell, nil
}
