package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/dcdb/wintermute/internal/sensor"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the gob-encoded durable form of a store.
type snapshot struct {
	Version int
	Series  map[sensor.Topic][]sensor.Reading
}

// WriteSnapshot serialises the store's full contents. The Collect Agent
// persists snapshots across restarts — the durability slice of the
// Cassandra deployment this store stands in for.
func (s *Store) WriteSnapshot(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion, Series: make(map[sensor.Topic][]sensor.Reading)}
	s.mu.RLock()
	for topic, se := range s.series {
		se.mu.RLock()
		if len(se.data) > 0 {
			snap.Series[topic] = append([]sensor.Reading(nil), se.data...)
		}
		se.mu.RUnlock()
	}
	s.mu.RUnlock()
	return gob.NewEncoder(w).Encode(snap)
}

// ReadSnapshot merges a snapshot's readings into the store.
func (s *Store) ReadSnapshot(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	for topic, readings := range snap.Series {
		s.InsertBatch(topic, readings)
	}
	return nil
}

// SaveFile writes a snapshot atomically: to a temporary file first, then
// renamed over the target, so a crash never leaves a torn snapshot.
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := s.WriteSnapshot(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile merges a snapshot file into the store.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.ReadSnapshot(bufio.NewReader(f))
}
