package store

import (
	"sort"
	"strings"
	"sync"

	"github.com/dcdb/wintermute/internal/sensor"
)

// TopicIndex is a sorted prefix table over the topic namespace: the
// wildcard index that lets `#` fan-out and REST prefix expansion resolve
// in O(log n + matches) instead of scanning (and re-sorting) every topic
// per request. Backends maintain one incrementally — insert adds, prune
// removes — so the read path never pays for namespace size.
//
// Topics are slash-separated paths, so lexicographic order groups a
// component's subtree into one contiguous run: all topics under /r1/
// sort between "/r1/" and "/r10" ('0' is the byte after '/'), and a
// prefix query is two binary searches plus a copy of the matches.
//
// The zero value is not usable; construct with NewTopicIndex. All
// methods are safe for concurrent use. TopicIndex.mu is a leaf in every
// holder's hierarchy except for ResetWith, whose snapshot callback runs
// under it (see the lock-order declaration below and docs/ANALYSIS.md).
//
//lint:lockorder Store.mu < TopicIndex.mu
type TopicIndex struct {
	mu     sync.RWMutex
	sorted []sensor.Topic
	has    map[sensor.Topic]struct{}
}

// NewTopicIndex returns an empty index.
func NewTopicIndex() *TopicIndex {
	return &TopicIndex{has: make(map[sensor.Topic]struct{})}
}

// Len returns the number of indexed topics.
func (ix *TopicIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sorted)
}

// Has reports whether topic is indexed.
func (ix *TopicIndex) Has(topic sensor.Topic) bool {
	ix.mu.RLock()
	_, ok := ix.has[topic]
	ix.mu.RUnlock()
	return ok
}

// Add indexes a topic, reporting whether it was newly added. Adding an
// indexed topic is a cheap no-op (one shared-lock map probe), so ingest
// hot paths may call it per batch.
func (ix *TopicIndex) Add(topic sensor.Topic) bool {
	ix.mu.RLock()
	_, ok := ix.has[topic]
	ix.mu.RUnlock()
	if ok {
		return false
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.has[topic]; ok {
		return false
	}
	ix.has[topic] = struct{}{}
	i := sort.Search(len(ix.sorted), func(i int) bool { return ix.sorted[i] >= topic })
	ix.sorted = append(ix.sorted, "")
	copy(ix.sorted[i+1:], ix.sorted[i:])
	ix.sorted[i] = topic
	return true
}

// Remove drops a topic from the index, reporting whether it was present.
func (ix *TopicIndex) Remove(topic sensor.Topic) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.has[topic]; !ok {
		return false
	}
	delete(ix.has, topic)
	i := sort.Search(len(ix.sorted), func(i int) bool { return ix.sorted[i] >= topic })
	ix.sorted = append(ix.sorted[:i], ix.sorted[i+1:]...)
	return true
}

// ResetWith atomically replaces the index contents with the topic set
// returned by live, which runs while the index lock is held. Retention
// passes use it to reconcile after bulk removals: because concurrent
// Add calls serialise against the callback, a topic whose data lands
// just before its Add is either visible to live() or re-added right
// after — pruned-away topics disappear, racing inserts never do.
//
// The callback must not call back into this index.
func (ix *TopicIndex) ResetWith(live func() []sensor.Topic) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	topics := live()
	ix.sorted = append(ix.sorted[:0], topics...)
	sort.Slice(ix.sorted, func(i, j int) bool { return ix.sorted[i] < ix.sorted[j] })
	ix.has = make(map[sensor.Topic]struct{}, len(ix.sorted))
	for _, t := range ix.sorted {
		ix.has[t] = struct{}{}
	}
}

// Prefix appends to dst the indexed topics at or below prefix, in sorted
// order, and returns the extended slice. The match is segment-aware
// (/r1/c10 is not below /r1/c1), mirroring sensor.Topic.HasPrefix. An
// empty prefix or the root matches every topic.
func (ix *TopicIndex) Prefix(prefix sensor.Topic, dst []sensor.Topic) []sensor.Topic {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	lo, hi, exact := prefixBounds(ix.sorted, prefix)
	if exact {
		dst = append(dst, prefix.AsSensor())
	}
	return append(dst, ix.sorted[lo:hi]...)
}

// prefixBounds locates the contiguous run of sorted topics strictly
// below prefix, plus whether prefix itself (as a sensor topic) is
// present. The subtree below /p is exactly the lexicographic interval
// ["/p/", "/p0"): '0' is the byte following '/', so every string
// starting with "/p/" — and nothing else — falls inside it.
func prefixBounds(sorted []sensor.Topic, prefix sensor.Topic) (lo, hi int, exact bool) {
	p := strings.TrimSuffix(string(prefix), "/")
	if p == "" {
		return 0, len(sorted), false
	}
	childLo := sensor.Topic(p + "/")
	childHi := sensor.Topic(p + "0")
	lo = sort.Search(len(sorted), func(i int) bool { return sorted[i] >= childLo })
	hi = lo + sort.Search(len(sorted)-lo, func(i int) bool { return sorted[lo+i] >= childHi })
	i := sort.Search(lo, func(i int) bool { return sorted[i] >= sensor.Topic(p) })
	exact = i < lo && sorted[i] == sensor.Topic(p)
	return lo, hi, exact
}

// PrefixMatcher is implemented by backends that maintain a topic index
// and can resolve a prefix in O(matches). The store dispatcher
// TopicsPrefix uses it when available and falls back to a linear scan
// over Topics() for foreign backends.
type PrefixMatcher interface {
	// TopicsPrefix returns the sorted topics at or below prefix that
	// hold at least one stored reading. An empty prefix (or the root)
	// returns every topic.
	TopicsPrefix(prefix sensor.Topic) []sensor.Topic
}

// TopicsPrefix resolves the topics of b at or below prefix: through the
// backend's own index when it implements PrefixMatcher, otherwise by
// filtering the full (already sorted) Topics listing. Mirrors the
// Aggregate/Downsample dispatcher pattern: consumers program against
// the capability, any store.Backend keeps working.
func TopicsPrefix(b Backend, prefix sensor.Topic) []sensor.Topic {
	if pm, ok := b.(PrefixMatcher); ok {
		return pm.TopicsPrefix(prefix)
	}
	var out []sensor.Topic
	for _, t := range b.Topics() {
		if t.HasPrefix(prefix) {
			out = append(out, t)
		}
	}
	return out
}
