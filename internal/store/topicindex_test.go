package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/dcdb/wintermute/internal/sensor"
)

func TestTopicIndexAddRemove(t *testing.T) {
	ix := NewTopicIndex()
	for _, tp := range []sensor.Topic{"/b", "/a", "/c"} {
		if !ix.Add(tp) {
			t.Fatalf("Add(%s) = false on first add", tp)
		}
	}
	if ix.Add("/a") {
		t.Fatal("duplicate Add reported new")
	}
	if ix.Len() != 3 || !ix.Has("/a") || ix.Has("/d") {
		t.Fatalf("Len=%d Has(/a)=%v Has(/d)=%v", ix.Len(), ix.Has("/a"), ix.Has("/d"))
	}
	if got := ix.Prefix("", nil); !reflect.DeepEqual(got, []sensor.Topic{"/a", "/b", "/c"}) {
		t.Fatalf("sorted order = %v", got)
	}
	if !ix.Remove("/b") || ix.Remove("/b") {
		t.Fatal("Remove semantics broken")
	}
	if got := ix.Prefix("", nil); !reflect.DeepEqual(got, []sensor.Topic{"/a", "/c"}) {
		t.Fatalf("after remove = %v", got)
	}
}

// TestTopicIndexPrefix pins the segment-aware interval trick: the
// subtree below /p is exactly ["/p/", "/p0"), so the sibling /r10 never
// leaks into /r1's expansion, and an exact sensor at the prefix itself
// is included.
func TestTopicIndexPrefix(t *testing.T) {
	ix := NewTopicIndex()
	all := []sensor.Topic{"/r1", "/r1/a", "/r1/a/x", "/r10/b", "/r2"}
	for _, tp := range all {
		ix.Add(tp)
	}
	for _, tc := range []struct {
		prefix sensor.Topic
		want   []sensor.Topic
	}{
		{"", all},
		{"/", all},
		{"/r1", []sensor.Topic{"/r1", "/r1/a", "/r1/a/x"}},
		{"/r1/", []sensor.Topic{"/r1", "/r1/a", "/r1/a/x"}},
		{"/r1/a", []sensor.Topic{"/r1/a", "/r1/a/x"}},
		{"/r10", []sensor.Topic{"/r10/b"}},
		{"/r9", nil},
		{"/r1/a/x", []sensor.Topic{"/r1/a/x"}},
	} {
		if got := ix.Prefix(tc.prefix, nil); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Prefix(%q) = %v, want %v", tc.prefix, got, tc.want)
		}
	}
}

// TestTopicIndexMatchesHasPrefix cross-checks the interval arithmetic
// against the reference semantics: for every prefix, the index answer
// must equal filtering the full namespace with Topic.HasPrefix.
func TestTopicIndexMatchesHasPrefix(t *testing.T) {
	ix := NewTopicIndex()
	var all []sensor.Topic
	for r := 0; r < 3; r++ {
		for n := 0; n < 12; n++ {
			tp := sensor.Topic(fmt.Sprintf("/r%d/n%d/power", r, n))
			all = append(all, tp)
			ix.Add(tp)
		}
	}
	for _, prefix := range []sensor.Topic{"", "/", "/r1", "/r1/", "/r1/n1", "/r1/n11", "/r3", "/r1/n1/power"} {
		var want []sensor.Topic
		for _, tp := range all {
			if tp.HasPrefix(prefix) {
				want = append(want, tp)
			}
		}
		got := ix.Prefix(prefix, nil)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		// The reference filter preserves insertion order; sort both via
		// the index's own full listing for comparison.
		wantSet := map[sensor.Topic]bool{}
		for _, tp := range want {
			wantSet[tp] = true
		}
		if len(got) != len(want) {
			t.Fatalf("Prefix(%q): %d matches, want %d", prefix, len(got), len(want))
		}
		for _, tp := range got {
			if !wantSet[tp] {
				t.Fatalf("Prefix(%q) returned %s not matched by HasPrefix", prefix, tp)
			}
		}
	}
}

func TestTopicIndexResetWith(t *testing.T) {
	ix := NewTopicIndex()
	ix.Add("/a")
	ix.Add("/b")
	ix.ResetWith(func() []sensor.Topic { return []sensor.Topic{"/c", "/b"} })
	if got := ix.Prefix("", nil); !reflect.DeepEqual(got, []sensor.Topic{"/b", "/c"}) {
		t.Fatalf("after reset = %v", got)
	}
	if ix.Has("/a") {
		t.Fatal("reset kept dropped topic")
	}
}

// TestTopicIndexConcurrency drives Add/Remove/Prefix/ResetWith from many
// goroutines; run under -race this checks the locking, and the final
// reconcile checks no topic is lost.
func TestTopicIndexConcurrency(t *testing.T) {
	ix := NewTopicIndex()
	var wg sync.WaitGroup
	topics := make([]sensor.Topic, 64)
	for i := range topics {
		topics[i] = sensor.Topic(fmt.Sprintf("/r%d/n%d/power", i%4, i))
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(topics); i += 4 {
				ix.Add(topics[i])
				ix.Prefix("/r1", nil)
				ix.Has(topics[i])
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			ix.ResetWith(func() []sensor.Topic { return topics })
		}
	}()
	wg.Wait()
	ix.ResetWith(func() []sensor.Topic { return topics })
	if ix.Len() != len(topics) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(topics))
	}
}

// plainBackend hides the Store's PrefixMatcher so the dispatcher's
// linear-scan fallback is exercised.
type plainBackend struct{ s *Store }

func (p plainBackend) Insert(topic sensor.Topic, r sensor.Reading) { p.s.Insert(topic, r) }
func (p plainBackend) InsertBatch(topic sensor.Topic, rs []sensor.Reading) {
	p.s.InsertBatch(topic, rs)
}
func (p plainBackend) Range(topic sensor.Topic, t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	return p.s.Range(topic, t0, t1, dst)
}
func (p plainBackend) Latest(topic sensor.Topic) (sensor.Reading, bool) { return p.s.Latest(topic) }
func (p plainBackend) Count(topic sensor.Topic) int                     { return p.s.Count(topic) }
func (p plainBackend) Topics() []sensor.Topic                           { return p.s.Topics() }
func (p plainBackend) Prune(cutoff int64) int                           { return p.s.Prune(cutoff) }

// TestTopicsPrefixDispatcher checks the capability dispatch: the indexed
// path and the Topics() fallback must agree.
func TestTopicsPrefixDispatcher(t *testing.T) {
	s := New(0)
	for _, tp := range []sensor.Topic{"/r1/n0/power", "/r1/n1/power", "/r10/n0/power", "/r2/n0/power"} {
		s.Insert(tp, sensor.Reading{Value: 1, Time: 1})
	}
	for _, prefix := range []sensor.Topic{"", "/r1", "/r10", "/r2/n0/power", "/r9"} {
		fast := TopicsPrefix(s, prefix)
		slow := TopicsPrefix(plainBackend{s}, prefix)
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("prefix %q: indexed %v != fallback %v", prefix, fast, slow)
		}
	}
}

// TestStoreTopicIndexPrune is the in-memory ghost regression: a fully
// pruned series must leave wildcard expansion; re-inserting re-adds it.
func TestStoreTopicIndexPrune(t *testing.T) {
	s := New(0)
	s.Insert("/old/x", sensor.Reading{Value: 1, Time: 1})
	s.Insert("/new/y", sensor.Reading{Value: 1, Time: 100})
	if n := s.Prune(50); n != 1 {
		t.Fatalf("pruned %d readings, want 1", n)
	}
	if got := s.TopicsPrefix(""); !reflect.DeepEqual(got, []sensor.Topic{"/new/y"}) {
		t.Fatalf("after prune = %v, want [/new/y]", got)
	}
	if got := s.TopicsPrefix("/old"); len(got) != 0 {
		t.Fatalf("ghost topic in expansion: %v", got)
	}
	s.Insert("/old/x", sensor.Reading{Value: 2, Time: 200})
	if got := s.TopicsPrefix("/old"); !reflect.DeepEqual(got, []sensor.Topic{"/old/x"}) {
		t.Fatalf("re-insert did not re-index: %v", got)
	}
}
