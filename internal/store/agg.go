package store

import (
	"fmt"
	"sort"

	"github.com/dcdb/wintermute/internal/sensor"
)

// This file defines the aggregation query contract of the Storage
// Backend layer. Wintermute's operators and on-demand REST queries
// consume aggregated sensor data — averages, extrema, rates over
// windows — not raw readings (paper §IV-d: the aggregator plugin and
// the unit system exist precisely so analytics never rescan raw
// streams). The Aggregator interface lets a backend answer such
// queries natively, streaming over its storage representation (for
// the tsdb engine: over compressed chunks, or O(1) from per-chunk
// pre-aggregates) instead of materializing the raw range into a slice
// that the caller then reduces and throws away.

// AggOp names a supported aggregation function over a reading window.
type AggOp uint8

// The aggregation operators of the query engine: arithmetic mean,
// minimum, maximum, sum and reading count.
const (
	AggAvg AggOp = iota
	AggMin
	AggMax
	AggSum
	AggCount
)

// ParseAggOp maps the REST-level operator spelling to an AggOp.
func ParseAggOp(s string) (AggOp, error) {
	switch s {
	case "avg", "mean":
		return AggAvg, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "sum":
		return AggSum, nil
	case "count":
		return AggCount, nil
	}
	return 0, fmt.Errorf("store: unknown aggregation op %q", s)
}

// String returns the canonical spelling of the operator.
func (op AggOp) String() string {
	switch op {
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	}
	return "unknown"
}

// AggResult accumulates the moments every AggOp can be answered from:
// reading count, value sum and extrema. The zero value is the identity
// (an empty window); results merge associatively, so per-chunk
// pre-aggregates, per-tier partials and per-sensor fan-outs all combine
// with the same operation.
type AggResult struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Observe folds one reading value into the accumulator.
func (a *AggResult) Observe(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Sum += v
	a.Count++
}

// Merge folds another accumulator in. Merging the zero value is a
// no-op, so partial results can be combined unconditionally.
func (a *AggResult) Merge(b AggResult) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 || b.Min < a.Min {
		a.Min = b.Min
	}
	if a.Count == 0 || b.Max > a.Max {
		a.Max = b.Max
	}
	a.Sum += b.Sum
	a.Count += b.Count
}

// Value evaluates the operator over the accumulated window; ok is
// false when the window was empty (except for AggCount, which answers
// 0 on an empty window).
func (a AggResult) Value(op AggOp) (float64, bool) {
	if op == AggCount {
		return float64(a.Count), true
	}
	if a.Count == 0 {
		return 0, false
	}
	switch op {
	case AggAvg:
		return a.Sum / float64(a.Count), true
	case AggMin:
		return a.Min, true
	case AggMax:
		return a.Max, true
	case AggSum:
		return a.Sum, true
	}
	return 0, false
}

// Bucket is one time-bucketed aggregate of a downsampling query: the
// readings with timestamps in [Start, Start+step) reduced to an
// AggResult.
type Bucket struct {
	Start int64
	AggResult
}

// Aggregator is the aggregation extension of the Backend contract. A
// backend implementing it answers windowed aggregates natively —
// without materializing raw readings for the caller. Use the package
// dispatchers Aggregate and Downsample to query any Backend: they pick
// the native path when available and fall back to Range+reduce.
type Aggregator interface {
	// Aggregate reduces the readings of topic with timestamps in
	// [t0, t1] (inclusive) to an AggResult.
	Aggregate(topic sensor.Topic, t0, t1 int64) AggResult
	// Downsample reduces the readings of topic in [t0, t1] into
	// consecutive buckets of width step (nanoseconds) aligned to t0,
	// appending only non-empty buckets to dst in time order. A
	// non-positive step yields no buckets.
	Downsample(topic sensor.Topic, t0, t1, step int64, dst []Bucket) []Bucket
}

// Aggregate answers an aggregation query against any Backend: natively
// when the backend implements Aggregator, otherwise via the naive
// Range+reduce fallback.
func Aggregate(b Backend, topic sensor.Topic, t0, t1 int64) AggResult {
	if agg, ok := b.(Aggregator); ok {
		return agg.Aggregate(topic, t0, t1)
	}
	return AggregateNaive(b, topic, t0, t1)
}

// Downsample answers a downsampling query against any Backend:
// natively when the backend implements Aggregator, otherwise via the
// naive Range+reduce fallback.
func Downsample(b Backend, topic sensor.Topic, t0, t1, step int64, dst []Bucket) []Bucket {
	if agg, ok := b.(Aggregator); ok {
		return agg.Downsample(topic, t0, t1, step, dst)
	}
	return DownsampleNaive(b, topic, t0, t1, step, dst)
}

// AggregateNaive is the materializing reference path: Range the raw
// readings into a slice and reduce it. It defines the semantics every
// native Aggregator implementation must reproduce (the tsdb property
// tests assert the equivalence) and serves backends without native
// aggregation.
func AggregateNaive(b Backend, topic sensor.Topic, t0, t1 int64) AggResult {
	var a AggResult
	for _, r := range b.Range(topic, t0, t1, nil) {
		a.Observe(r.Value)
	}
	return a
}

// DownsampleNaive is the materializing reference path for Downsample,
// defining the bucketing semantics: buckets are aligned to t0, a
// reading with timestamp t lands in bucket (t-t0)/step, and only
// non-empty buckets are emitted, in time order.
func DownsampleNaive(b Backend, topic sensor.Topic, t0, t1, step int64, dst []Bucket) []Bucket {
	if step <= 0 || t1 < t0 {
		return dst
	}
	return DownsampleSorted(b.Range(topic, t0, t1, nil), t0, t0, t1, step, dst)
}

// AggregateSorted reduces the readings of a time-sorted slice with
// timestamps in [t0, t1] in one pass. It is the shared reduction every
// sorted tier uses: the in-memory store's series, the tsdb's head
// blocks and flushing stage.
func AggregateSorted(rs []sensor.Reading, t0, t1 int64) AggResult {
	var a AggResult
	lo := sort.Search(len(rs), func(i int) bool { return rs[i].Time >= t0 })
	hi := sort.Search(len(rs), func(i int) bool { return rs[i].Time > t1 })
	for _, r := range rs[lo:hi] {
		a.Observe(r.Value)
	}
	return a
}

// DownsampleSorted buckets the readings of a time-sorted slice: buckets
// aligned to t0, readings clamped to [lo, t1] (lo lets the tsdb apply
// its retention watermark without disturbing bucket alignment), only
// non-empty buckets appended to dst in time order. Every sorted-slice
// Downsample implementation delegates here so the bucketing semantics
// live in exactly one place.
func DownsampleSorted(rs []sensor.Reading, t0, lo, t1, step int64, dst []Bucket) []Bucket {
	if step <= 0 || t1 < lo {
		return dst
	}
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Time >= lo })
	hi := sort.Search(len(rs), func(i int) bool { return rs[i].Time > t1 })
	for i < hi {
		k := (rs[i].Time - t0) / step
		var a AggResult
		for i < hi && (rs[i].Time-t0)/step == k {
			a.Observe(rs[i].Value)
			i++
		}
		dst = append(dst, Bucket{Start: t0 + k*step, AggResult: a})
	}
	return dst
}

var _ Aggregator = (*Store)(nil)

// Aggregate implements Aggregator natively for the in-memory store:
// one binary search for the window bounds, then a single streaming pass
// over the series slice — no copy of the readings.
func (s *Store) Aggregate(topic sensor.Topic, t0, t1 int64) AggResult {
	se := s.get(topic, false)
	if se == nil || t1 < t0 {
		return AggResult{}
	}
	se.mu.RLock()
	defer se.mu.RUnlock()
	return AggregateSorted(se.data, t0, t1)
}

// Downsample implements Aggregator natively for the in-memory store,
// emitting buckets in one streaming pass over the sorted series.
func (s *Store) Downsample(topic sensor.Topic, t0, t1, step int64, dst []Bucket) []Bucket {
	se := s.get(topic, false)
	if se == nil {
		return dst
	}
	se.mu.RLock()
	defer se.mu.RUnlock()
	return DownsampleSorted(se.data, t0, t0, t1, step, dst)
}
