package store

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/dcdb/wintermute/internal/sensor"
)

func TestInsertAndRange(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.Insert("/n/power", sensor.Reading{Value: float64(i), Time: int64(i * 100)})
	}
	got := s.Range("/n/power", 200, 500, nil)
	if len(got) != 4 || got[0].Value != 2 || got[3].Value != 5 {
		t.Fatalf("Range = %+v", got)
	}
	if got := s.Range("/n/power", 5000, 9000, nil); len(got) != 0 {
		t.Fatalf("empty range = %+v", got)
	}
	if got := s.Range("/missing", 0, 100, nil); len(got) != 0 {
		t.Fatalf("missing topic = %+v", got)
	}
	if got := s.Range("/n/power", 500, 200, nil); len(got) != 0 {
		t.Fatalf("inverted range = %+v", got)
	}
}

func TestOutOfOrderInsert(t *testing.T) {
	s := New(0)
	times := []int64{50, 10, 30, 20, 40, 25}
	for _, ts := range times {
		s.Insert("/x", sensor.Reading{Value: float64(ts), Time: ts})
	}
	got := s.Range("/x", 0, 100, nil)
	if len(got) != len(times) {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("series not ordered: %+v", got)
		}
	}
}

func TestOrderInvariantProperty(t *testing.T) {
	f := func(times []int16) bool {
		s := New(0)
		for _, ts := range times {
			s.Insert("/t", sensor.Reading{Time: int64(ts)})
		}
		got := s.Range("/t", -40000, 40000, nil)
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Time < got[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLatest(t *testing.T) {
	s := New(0)
	if _, ok := s.Latest("/x"); ok {
		t.Fatal("missing topic should have no latest")
	}
	s.Insert("/x", sensor.Reading{Value: 1, Time: 10})
	s.Insert("/x", sensor.Reading{Value: 2, Time: 20})
	s.Insert("/x", sensor.Reading{Value: 3, Time: 15}) // out of order
	r, ok := s.Latest("/x")
	if !ok || r.Value != 2 {
		t.Fatalf("Latest = %+v, %v", r, ok)
	}
}

func TestRetentionBound(t *testing.T) {
	s := New(5)
	for i := 0; i < 20; i++ {
		s.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i)})
	}
	if s.Count("/x") != 5 {
		t.Fatalf("Count = %d, want 5", s.Count("/x"))
	}
	got := s.Range("/x", 0, 100, nil)
	if got[0].Value != 15 || got[4].Value != 19 {
		t.Fatalf("retained wrong window: %+v", got)
	}
}

func TestTopicsSorted(t *testing.T) {
	s := New(0)
	for _, tp := range []sensor.Topic{"/c", "/a", "/b"} {
		s.Insert(tp, sensor.Reading{Time: 1})
	}
	got := s.Topics()
	if len(got) != 3 || got[0] != "/a" || got[2] != "/c" {
		t.Fatalf("Topics = %v", got)
	}
}

func TestPrune(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.Insert("/x", sensor.Reading{Time: int64(i)})
		s.Insert("/y", sensor.Reading{Time: int64(i)})
	}
	removed := s.Prune(5)
	if removed != 10 {
		t.Fatalf("removed = %d, want 10", removed)
	}
	if s.Count("/x") != 5 || s.Count("/y") != 5 {
		t.Fatalf("counts = %d/%d", s.Count("/x"), s.Count("/y"))
	}
	if r, _ := s.Latest("/x"); r.Time != 9 {
		t.Fatal("prune must keep newest data")
	}
	if s.TotalReadings() != 10 {
		t.Fatalf("TotalReadings = %d", s.TotalReadings())
	}
}

func TestPruneDeletesEmptySeries(t *testing.T) {
	s := New(0)
	for i := 0; i < 5; i++ {
		s.Insert("/old", sensor.Reading{Time: int64(i)})
		s.Insert("/live", sensor.Reading{Time: int64(100 + i)})
	}
	if removed := s.Prune(50); removed != 5 {
		t.Fatalf("removed = %d, want 5", removed)
	}
	s.mu.RLock()
	_, leaked := s.series["/old"]
	entries := len(s.series)
	s.mu.RUnlock()
	if leaked || entries != 1 {
		t.Fatalf("fully-pruned series leaked: %d entries, /old present=%v", entries, leaked)
	}
	if got := s.Topics(); len(got) != 1 || got[0] != "/live" {
		t.Fatalf("Topics = %v", got)
	}
	// The topic stays usable: a new insert recreates the series.
	s.Insert("/old", sensor.Reading{Value: 1, Time: 200})
	if s.Count("/old") != 1 {
		t.Fatalf("reinsert after prune-delete: Count = %d", s.Count("/old"))
	}
}

func TestPruneInsertRace(t *testing.T) {
	s := New(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Prune(1 << 60) // everything is older than this cutoff
			}
		}
	}()
	const n = 5000
	for i := 0; i < n; i++ {
		s.Insert("/hot", sensor.Reading{Value: float64(i), Time: int64(i)})
	}
	close(stop)
	wg.Wait()
	// Every reading either survived or was counted out by Prune; none may
	// vanish into an orphaned series.
	if got := s.Count("/hot"); got > n {
		t.Fatalf("Count = %d > %d inserted", got, n)
	}
	s.Insert("/hot", sensor.Reading{Value: -1, Time: 1 << 61})
	if r, ok := s.Latest("/hot"); !ok || r.Value != -1 {
		t.Fatalf("insert after racing prune lost: %+v %v", r, ok)
	}
}

func TestInsertBatch(t *testing.T) {
	s := New(0)
	rs := []sensor.Reading{{Value: 1, Time: 1}, {Value: 2, Time: 2}}
	s.InsertBatch("/x", rs)
	if s.Count("/x") != 2 {
		t.Fatalf("Count = %d", s.Count("/x"))
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	s := New(1000)
	var wg sync.WaitGroup
	topics := []sensor.Topic{"/a", "/b", "/c", "/d"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				tp := topics[rng.Intn(len(topics))]
				s.Insert(tp, sensor.Reading{Value: float64(i), Time: int64(i)})
			}
		}(int64(w))
	}
	for i := 0; i < 1000; i++ {
		for _, tp := range topics {
			s.Range(tp, 0, int64(i), nil)
			s.Latest(tp)
		}
	}
	wg.Wait()
	if len(s.Topics()) != 4 {
		t.Fatalf("Topics = %v", s.Topics())
	}
}
