package store

import "github.com/dcdb/wintermute/internal/sensor"

// Backend is the Storage Backend contract every persistent or in-memory
// reading store satisfies: ordered per-topic inserts, inclusive
// time-range and latest-reading queries, topic enumeration and
// time-based retention. The Query Engine's store fallback, the cache
// sinks and the Collect Agent all program against this interface, so a
// component can swap the in-memory Store for the embedded tsdb engine
// (or, in the production deployment, Cassandra) without touching its
// consumers.
type Backend interface {
	// Insert appends one reading to the topic's series, placing
	// out-of-order arrivals at their sorted position.
	Insert(topic sensor.Topic, r sensor.Reading)
	// InsertBatch appends several readings of one topic in one call,
	// amortising locking (and, for persistent backends, write-ahead
	// logging) over the batch.
	InsertBatch(topic sensor.Topic, rs []sensor.Reading)
	// Range appends the topic's readings with timestamps in [t0, t1]
	// (inclusive) to dst, in timestamp order, and returns the extended
	// slice.
	Range(topic sensor.Topic, t0, t1 int64, dst []sensor.Reading) []sensor.Reading
	// Latest returns the most recent reading of topic, if any.
	Latest(topic sensor.Topic) (sensor.Reading, bool)
	// Count returns the number of readings stored for topic.
	Count(topic sensor.Topic) int
	// Topics returns all topics with at least one stored reading, sorted.
	Topics() []sensor.Topic
	// Prune drops all readings strictly older than cutoff (nanoseconds)
	// and returns the number of readings removed.
	Prune(cutoff int64) int
}

// BackendStats is a point-in-time summary of a Storage Backend, served
// by the REST layer's /storage endpoint. Disk and WAL/segment fields are
// zero for in-memory backends.
type BackendStats struct {
	// Kind identifies the backend implementation ("memory" or "tsdb").
	Kind string `json:"kind"`
	// Topics is the number of series holding at least one reading.
	Topics int `json:"topics"`
	// TotalReadings is the reading count across all series.
	TotalReadings int `json:"total_readings"`
	// DiskBytes is the backend's on-disk footprint (segments + WAL).
	DiskBytes int64 `json:"disk_bytes"`
	// WALFiles and WALBytes describe the write-ahead log.
	WALFiles int   `json:"wal_files"`
	WALBytes int64 `json:"wal_bytes"`
	// Segments is the number of immutable segment files.
	Segments int `json:"segments"`
	// HeadReadings counts readings buffered in mutable head blocks,
	// not yet flushed to segments.
	HeadReadings int `json:"head_readings"`
	// Error reports a degraded backend (e.g. a failing write-ahead log:
	// data is served from memory but no longer durable). Empty when
	// healthy.
	Error string `json:"error,omitempty"`
}

// StatsProvider is implemented by backends that can report storage
// statistics.
type StatsProvider interface {
	Stats() BackendStats
}

var _ Backend = (*Store)(nil)
var _ StatsProvider = (*Store)(nil)
var _ PrefixMatcher = (*Store)(nil)

// Stats implements StatsProvider for the in-memory store.
func (s *Store) Stats() BackendStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := BackendStats{Kind: "memory"}
	for _, se := range s.series {
		se.mu.RLock()
		n := len(se.data)
		se.mu.RUnlock()
		if n > 0 {
			st.Topics++
			st.TotalReadings += n
		}
	}
	return st
}
