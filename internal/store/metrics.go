package store

import (
	"sync"

	"github.com/dcdb/wintermute/internal/telemetry"
)

// DecodeStatsProvider is implemented by backends that count storage
// chunk decodes (the tsdb engine); the REST slow-query log samples it
// around a request to attribute decode work to a query.
type DecodeStatsProvider interface {
	// ChunksDecoded returns the number of chunks decoded since open.
	ChunksDecoded() uint64
}

// RegisterBackendMetrics exposes a backend's statistics through the
// registry as dcdb_storage_* gauges, refreshed by one Stats() call per
// scrape via a registry updater — so every derived series (and the
// REST /storage endpoint reading the same registry) reflects a single
// consistent snapshot. The returned handles must be closed before the
// backend is; a nil backend, a nil registry or a backend without
// StatsProvider registers nothing.
func RegisterBackendMetrics(reg *telemetry.Registry, be Backend) []*telemetry.FuncHandle {
	if reg == nil || be == nil {
		return nil
	}
	sp, ok := be.(StatsProvider)
	if !ok {
		return nil
	}
	topics := reg.Gauge("dcdb_storage_topics",
		"Series holding at least one stored reading.")
	total := reg.Gauge("dcdb_storage_readings",
		"Readings stored across all series.")
	disk := reg.Gauge("dcdb_storage_disk_bytes",
		"On-disk footprint of the backend (segments + WAL).")
	walFiles := reg.Gauge("dcdb_storage_wal_files",
		"Write-ahead log files on disk.")
	walBytes := reg.Gauge("dcdb_storage_wal_bytes",
		"Write-ahead log bytes on disk.")
	segments := reg.Gauge("dcdb_storage_segments",
		"Immutable segment files.")
	headReadings := reg.Gauge("dcdb_storage_head_readings",
		"Readings buffered in mutable heads, not yet in segments.")
	degraded := reg.Gauge("dcdb_storage_degraded",
		"1 when the backend reports an error state, else 0.")

	// The updater also caches the last full BackendStats so the REST
	// tier can re-serve /storage from the exact numbers /metrics
	// exposed (see LastBackendStats).
	cache := &backendStatsCache{}
	upd := reg.AddUpdater(func() {
		st := sp.Stats()
		cache.set(st)
		topics.Set(float64(st.Topics))
		total.Set(float64(st.TotalReadings))
		disk.Set(float64(st.DiskBytes))
		walFiles.Set(float64(st.WALFiles))
		walBytes.Set(float64(st.WALBytes))
		segments.Set(float64(st.Segments))
		headReadings.Set(float64(st.HeadReadings))
		if st.Error != "" {
			degraded.Set(1)
		} else {
			degraded.Set(0)
		}
	})
	registerStatsCache(reg, cache)
	return []*telemetry.FuncHandle{upd}
}

// backendStatsCache holds the BackendStats captured by the most recent
// registry snapshot.
type backendStatsCache struct {
	mu sync.Mutex
	st BackendStats
	ok bool
}

func (c *backendStatsCache) set(st BackendStats) {
	c.mu.Lock()
	c.st, c.ok = st, true
	c.mu.Unlock()
}

func (c *backendStatsCache) get() (BackendStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st, c.ok
}

// statsCaches maps a registry to its backend stats cache; registries
// are few (one per process in production, one per test), so a global
// map keyed by pointer is fine.
var statsCaches sync.Map // *telemetry.Registry -> *backendStatsCache

func registerStatsCache(reg *telemetry.Registry, c *backendStatsCache) {
	statsCaches.Store(reg, c)
}

// LastBackendStats returns the BackendStats captured by the most
// recent snapshot of reg (a /metrics scrape, Snapshot call or
// self-monitor pass), and false if no snapshot has run yet or no
// backend is registered. The REST tier uses it to serve /storage from
// the same numbers /metrics last exposed.
func LastBackendStats(reg *telemetry.Registry) (BackendStats, bool) {
	v, ok := statsCaches.Load(reg)
	if !ok {
		return BackendStats{}, false
	}
	return v.(*backendStatsCache).get()
}
