// Package store implements the DCDB Storage Backend as an embedded,
// concurrency-safe time-series store.
//
// The production DCDB deployment uses Apache Cassandra; every consumer in
// this codebase (Collect Agent inserts, Query Engine fallback reads, REST
// queries) only relies on per-sensor ordered insert and time-range query
// semantics, which this package provides in memory. Distribution and
// replication are orthogonal to all of the paper's experiments (see
// DESIGN.md, substitution table).
package store

import (
	"sort"
	"sync"

	"github.com/dcdb/wintermute/internal/sensor"
)

// Store holds one ordered reading series per sensor topic. The zero value
// is not usable; construct with New.
//
//lint:lockorder Store.mu < series.mu
type Store struct {
	mu           sync.RWMutex
	series       map[sensor.Topic]*series
	maxPerSeries int // readings retained per sensor; 0 means unlimited
	// idx mirrors the series map as a sorted prefix table so wildcard
	// fan-out resolves in O(matches); maintained under s.mu on series
	// creation and prune (lock order: Store.mu < TopicIndex.mu).
	idx *TopicIndex
}

type series struct {
	mu   sync.RWMutex
	data []sensor.Reading
	// dead marks a series Prune has removed from the map. An insert that
	// resolved the pointer before the removal detects the tombstone and
	// re-resolves instead of appending to an orphan.
	dead bool
}

// New creates a store retaining up to maxPerSeries readings per sensor
// (the oldest are evicted first); 0 disables the bound.
func New(maxPerSeries int) *Store {
	return &Store{
		series:       make(map[sensor.Topic]*series),
		maxPerSeries: maxPerSeries,
		idx:          NewTopicIndex(),
	}
}

func (s *Store) get(topic sensor.Topic, create bool) *series {
	s.mu.RLock()
	se := s.series[topic]
	s.mu.RUnlock()
	if se != nil || !create {
		return se
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if se = s.series[topic]; se == nil {
		se = &series{}
		s.series[topic] = se
		s.idx.Add(topic)
	}
	return se
}

// insert places one reading at its sorted position. Callers must hold
// se.mu.
func (se *series) insert(r sensor.Reading) {
	n := len(se.data)
	if n == 0 || se.data[n-1].Time <= r.Time {
		se.data = append(se.data, r)
		return
	}
	i := sort.Search(n, func(i int) bool { return se.data[i].Time > r.Time })
	se.data = append(se.data, sensor.Reading{})
	copy(se.data[i+1:], se.data[i:])
	se.data[i] = r
}

// trim enforces the per-series retention bound. Callers must hold se.mu.
func (se *series) trim(max int) {
	if max > 0 && len(se.data) > max {
		drop := len(se.data) - max
		se.data = append(se.data[:0], se.data[drop:]...)
	}
}

// Insert appends a reading to the series of topic. Readings arriving out
// of timestamp order are placed at their sorted position, so range queries
// always observe a time-ordered series.
func (s *Store) Insert(topic sensor.Topic, r sensor.Reading) {
	for {
		se := s.get(topic, true)
		se.mu.Lock()
		if se.dead {
			se.mu.Unlock()
			continue // pruned away between resolution and lock; re-resolve
		}
		se.insert(r)
		se.trim(s.maxPerSeries)
		se.mu.Unlock()
		return
	}
}

// InsertBatch appends several readings to one topic under a single lock
// acquisition, trimming retention once at the end — the batched-sink
// ingest path of the Collect Agent (one lock per delivered MQTT message
// or operator-unit batch instead of one per reading).
func (s *Store) InsertBatch(topic sensor.Topic, rs []sensor.Reading) {
	if len(rs) == 0 {
		return
	}
	for {
		se := s.get(topic, true)
		se.mu.Lock()
		if se.dead {
			se.mu.Unlock()
			continue
		}
		for _, r := range rs {
			se.insert(r)
		}
		se.trim(s.maxPerSeries)
		se.mu.Unlock()
		return
	}
}

// Range appends to dst the readings of topic with timestamps in [t0, t1]
// (inclusive) and returns the extended slice.
func (s *Store) Range(topic sensor.Topic, t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	se := s.get(topic, false)
	if se == nil || t1 < t0 {
		return dst
	}
	se.mu.RLock()
	defer se.mu.RUnlock()
	lo := sort.Search(len(se.data), func(i int) bool { return se.data[i].Time >= t0 })
	hi := sort.Search(len(se.data), func(i int) bool { return se.data[i].Time > t1 })
	return append(dst, se.data[lo:hi]...)
}

// Latest returns the most recent reading of topic, if any.
func (s *Store) Latest(topic sensor.Topic) (sensor.Reading, bool) {
	se := s.get(topic, false)
	if se == nil {
		return sensor.Reading{}, false
	}
	se.mu.RLock()
	defer se.mu.RUnlock()
	if len(se.data) == 0 {
		return sensor.Reading{}, false
	}
	return se.data[len(se.data)-1], true
}

// Count returns the number of readings stored for topic.
func (s *Store) Count(topic sensor.Topic) int {
	se := s.get(topic, false)
	if se == nil {
		return 0
	}
	se.mu.RLock()
	defer se.mu.RUnlock()
	return len(se.data)
}

// Topics returns all topics with at least one stored reading, sorted.
func (s *Store) Topics() []sensor.Topic {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]sensor.Topic, 0, len(s.series))
	for t, se := range s.series {
		se.mu.RLock()
		n := len(se.data)
		se.mu.RUnlock()
		if n > 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Prune drops all readings strictly older than cutoff (nanoseconds) from
// every series, implementing retention (the TTL of the Cassandra schema).
// Series left empty are deleted outright — long-gone sensors must not
// leak map entries (and their topic strings) forever. It returns the
// number of readings removed.
func (s *Store) Prune(cutoff int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for topic, se := range s.series {
		se.mu.Lock()
		lo := sort.Search(len(se.data), func(i int) bool { return se.data[i].Time >= cutoff })
		if lo > 0 {
			removed += lo
			se.data = append(se.data[:0], se.data[lo:]...)
		}
		if len(se.data) == 0 {
			se.dead = true // a racing Insert re-resolves via the tombstone
			delete(s.series, topic)
			se.mu.Unlock()
			// Evict the topic from the prefix index too, so retention
			// leaves no ghost topics behind in wildcard expansion. Still
			// under s.mu: a racing Insert re-creates both entries.
			s.idx.Remove(topic)
			continue
		}
		se.mu.Unlock()
	}
	return removed
}

// TopicsPrefix implements PrefixMatcher: the sorted topics at or below
// prefix, answered from the incrementally-maintained prefix index in
// O(log n + matches).
func (s *Store) TopicsPrefix(prefix sensor.Topic) []sensor.Topic {
	return s.idx.Prefix(prefix, nil)
}

// TotalReadings returns the number of readings across all series.
func (s *Store) TotalReadings() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, se := range s.series {
		se.mu.RLock()
		n += len(se.data)
		se.mu.RUnlock()
	}
	return n
}
