package store

import (
	"math/rand"
	"testing"

	"github.com/dcdb/wintermute/internal/sensor"
)

func TestAggResultObserveMergeValue(t *testing.T) {
	var a AggResult
	if _, ok := a.Value(AggAvg); ok {
		t.Fatal("empty result answered avg")
	}
	if v, ok := a.Value(AggCount); !ok || v != 0 {
		t.Fatalf("empty count = %v, %v; want 0, true", v, ok)
	}
	for _, v := range []float64{3, -1, 7, 5} {
		a.Observe(v)
	}
	for _, tc := range []struct {
		op   AggOp
		want float64
	}{
		{AggAvg, 3.5}, {AggMin, -1}, {AggMax, 7}, {AggSum, 14}, {AggCount, 4},
	} {
		if v, ok := a.Value(tc.op); !ok || v != tc.want {
			t.Fatalf("%s = %v, %v; want %v", tc.op, v, ok, tc.want)
		}
	}
	var b AggResult
	b.Observe(-10)
	b.Merge(a)
	if b.Count != 5 || b.Min != -10 || b.Max != 7 || b.Sum != 4 {
		t.Fatalf("merged = %+v", b)
	}
	empty := AggResult{}
	b2 := b
	b.Merge(empty)
	if b != b2 {
		t.Fatal("merging the identity changed the accumulator")
	}
	empty.Merge(b2)
	if empty != b2 {
		t.Fatal("merging into the identity did not copy")
	}
}

func TestParseAggOp(t *testing.T) {
	for _, s := range []string{"avg", "mean", "min", "max", "sum", "count"} {
		if _, err := ParseAggOp(s); err != nil {
			t.Fatalf("ParseAggOp(%q): %v", s, err)
		}
	}
	for _, op := range []AggOp{AggAvg, AggMin, AggMax, AggSum, AggCount} {
		back, err := ParseAggOp(op.String())
		if err != nil || back != op {
			t.Fatalf("round trip %v -> %q -> %v, %v", op, op.String(), back, err)
		}
	}
	if _, err := ParseAggOp("median"); err == nil {
		t.Fatal("ParseAggOp accepted median")
	}
}

// opaque hides Store's native Aggregator implementation, forcing the
// dispatchers onto the naive fallback.
type opaque struct{ *Store }

// TestStoreAggregateMatchesNaive drives the in-memory store's native
// streaming implementation against the materializing reference over
// randomized series, and checks the dispatchers serve both backend
// shapes.
func TestStoreAggregateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(0)
	var maxT int64
	for i := 0; i < 3000; i++ {
		ts := rng.Int63n(10_000)
		if ts > maxT {
			maxT = ts
		}
		s.Insert("/n/power", sensor.Reading{Time: ts, Value: float64(rng.Intn(500))})
	}
	for trial := 0; trial < 50; trial++ {
		t0 := rng.Int63n(maxT) - 100
		t1 := t0 + rng.Int63n(maxT/2+1)
		got := s.Aggregate("/n/power", t0, t1)
		want := AggregateNaive(s, "/n/power", t0, t1)
		if got != want {
			t.Fatalf("Aggregate(%d, %d) = %+v, naive %+v", t0, t1, got, want)
		}
		if via := Aggregate(opaque{s}, "/n/power", t0, t1); via != want {
			t.Fatalf("dispatcher on opaque backend = %+v, naive %+v", via, want)
		}
		step := []int64{1, 9, 250, 5000}[rng.Intn(4)]
		gotB := s.Downsample("/n/power", t0, t1, step, nil)
		wantB := DownsampleNaive(s, "/n/power", t0, t1, step, nil)
		if len(gotB) != len(wantB) {
			t.Fatalf("Downsample(%d, %d, %d): %d buckets, naive %d", t0, t1, step, len(gotB), len(wantB))
		}
		for i := range gotB {
			if gotB[i] != wantB[i] {
				t.Fatalf("bucket %d = %+v, naive %+v", i, gotB[i], wantB[i])
			}
		}
	}
	if got := s.Aggregate("/missing", 0, maxT); got.Count != 0 {
		t.Fatalf("missing topic aggregate = %+v", got)
	}
	if got := s.Downsample("/n/power", 0, maxT, 0, nil); got != nil {
		t.Fatalf("step 0 yielded buckets: %+v", got)
	}
}
