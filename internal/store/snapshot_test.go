package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/dcdb/wintermute/internal/sensor"
)

func populated() *Store {
	s := New(0)
	for i := 0; i < 50; i++ {
		s.Insert("/a/power", sensor.Reading{Value: float64(i), Time: int64(i)})
		if i%2 == 0 {
			s.Insert("/b/temp", sensor.Reading{Value: float64(i) / 2, Time: int64(i)})
		}
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := populated()
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(0)
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Count("/a/power") != 50 || dst.Count("/b/temp") != 25 {
		t.Fatalf("counts = %d/%d", dst.Count("/a/power"), dst.Count("/b/temp"))
	}
	a := src.Range("/a/power", 0, 100, nil)
	b := dst.Range("/a/power", 0, 100, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSnapshotMergesIntoExisting(t *testing.T) {
	src := populated()
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(0)
	dst.Insert("/c/extra", sensor.Reading{Value: 1, Time: 1})
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Count("/c/extra") != 1 || dst.Count("/a/power") != 50 {
		t.Fatal("merge lost data")
	}
}

func TestSnapshotBadData(t *testing.T) {
	s := New(0)
	if err := s.ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")
	src := populated()
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Atomic write leaves no temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary file left behind")
	}
	dst := New(0)
	if err := dst.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if dst.TotalReadings() != src.TotalReadings() {
		t.Fatalf("readings = %d, want %d", dst.TotalReadings(), src.TotalReadings())
	}
	if err := dst.LoadFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSnapshotRespectsRetention(t *testing.T) {
	src := populated() // 50 readings on /a/power
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(10) // bounded store keeps only the newest 10
	if err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Count("/a/power") != 10 {
		t.Fatalf("count = %d, want 10", dst.Count("/a/power"))
	}
	if r, _ := dst.Latest("/a/power"); r.Value != 49 {
		t.Fatal("retention dropped the wrong end")
	}
}
