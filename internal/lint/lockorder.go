package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrder enforces the module's declared mutex hierarchy and unlock
// discipline:
//
//   - Directives of the form
//
//     //lint:lockorder DB.flushMu < DB.ingest < DB.mu < headShard.mu
//
//     declare a partial order over mutex classes of the directive's own
//     package (a class is a named struct's mutex field, "Type.field", or
//     a package-level mutex variable, "name"). Several directives merge;
//     the order is closed transitively.
//
//   - An acquisition of class B while class A is held is an inversion
//     when the declared order says B must come before A — the shape of
//     deadlock PR 1 fixed by hand in Manager.Status. Pairs the order
//     does not relate are not reported: the declaration is the contract.
//
//   - Acquiring a class already held is reported as a potential
//     self-deadlock (two instances of one class are indistinguishable
//     here; shared RLock-under-RLock is exempt).
//
//   - Every Lock must be released on every path: a return (or function
//     end) with a tracked mutex still held — net of deferred unlocks —
//     is reported, as is a branch merge where the two arms disagree
//     about what is held.
//
// Checks run through the intra-package call graph: the transitive
// acquire-set of every called function is tested against the caller's
// held set, so an inversion hidden behind a helper is still found.
// Function literals are analyzed as independent functions (they run on
// their own goroutine or at an unknown call point).
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "declared mutex partial order and unlock-on-every-path discipline",
		Run:  runLockOrder,
	}
}

// lockClass identifies a mutex class: the types.Var of a struct mutex
// field or of a package-level mutex variable.
type lockClass = *types.Var

// lockEvent classifies what a call expression does to a tracked mutex.
type lockEvent int

const (
	evNone lockEvent = iota
	evLock
	evRLock
	evUnlock
	evRUnlock
)

// runLockOrder drives the analyzer: resolve directives, build function
// summaries, then walk every function body tracking the held set.
func runLockOrder(m *Module) []Finding {
	var out []Finding
	order, names := resolveLockOrder(m, &out)
	lo := &lockOrderPass{
		m:       m,
		order:   order,
		names:   names,
		bodies:  funcBodies(m),
		summary: map[*types.Func]map[lockClass]bool{},
	}
	lo.buildSummaries()
	walkFuncs(m, func(pkg *Package, decl *ast.FuncDecl) {
		lo.checkFunc(pkg, decl.Body, &out)
		// Function literals get their own empty-held analysis.
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lo.checkFunc(pkg, lit.Body, &out)
			}
			return true
		})
	})
	return out
}

// resolveLockOrder parses every //lint:lockorder directive into ordered
// class pairs and computes the transitive closure. Unresolvable
// elements become findings rather than silently dropped contract.
func resolveLockOrder(m *Module, out *[]Finding) (map[lockClass]map[lockClass]bool, map[*types.Var]string) {
	names := fieldNames(m)
	order := map[lockClass]map[lockClass]bool{}
	addEdge := func(a, b lockClass) {
		if order[a] == nil {
			order[a] = map[lockClass]bool{}
		}
		order[a][b] = true
	}
	for _, pkg := range m.Pkgs {
		for _, d := range packageDirectives(m, pkg, "lockorder") {
			var chain []lockClass
			ok := true
			for _, elem := range strings.Split(d.args, "<") {
				elem = strings.TrimSpace(elem)
				cls := lookupLockClass(pkg, elem)
				if cls == nil {
					*out = append(*out, Finding{
						Pos:      d.pos,
						Analyzer: "lockorder",
						Message:  fmt.Sprintf("lockorder directive names unknown mutex %q (want Type.field or a package-level var of package %s)", elem, pkg.Pkg.Name()),
					})
					ok = false
					break
				}
				if names[cls] == "" {
					names[cls] = pkg.Pkg.Name() + "." + cls.Name()
				}
				chain = append(chain, cls)
			}
			if !ok {
				continue
			}
			for i := 0; i+1 < len(chain); i++ {
				addEdge(chain[i], chain[i+1])
			}
		}
	}
	// Transitive closure (the graphs here are tiny).
	for changed := true; changed; {
		changed = false
		for a, succ := range order {
			for b := range succ {
				for c := range order[b] {
					if !order[a][c] {
						addEdge(a, c)
						changed = true
					}
				}
			}
		}
	}
	return order, names
}

// packageDirectives returns the //lint:<verb> directives found in one
// package's files.
func packageDirectives(m *Module, pkg *Package, verb string) []directive {
	prefix := "//lint:" + verb
	var out []directive
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, prefix); ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
					out = append(out, directive{pos: m.Fset.Position(c.Pos()), args: strings.TrimSpace(rest)})
				}
			}
		}
	}
	return out
}

// lookupLockClass resolves a directive element ("Type.field" or
// "pkgVar") to its mutex object within pkg.
func lookupLockClass(pkg *Package, elem string) lockClass {
	scope := pkg.Pkg.Scope()
	typeName, fieldName, isField := strings.Cut(elem, ".")
	if !isField {
		if v, ok := scope.Lookup(elem).(*types.Var); ok && isMutexType(v.Type()) {
			return v
		}
		return nil
	}
	tn, ok := scope.Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == fieldName && isMutexType(f.Type()) {
			return f
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// lockOrderPass carries the analyzer state across functions.
type lockOrderPass struct {
	m      *Module
	order  map[lockClass]map[lockClass]bool
	names  map[*types.Var]string
	bodies map[*types.Func]*ast.FuncDecl
	// summary is each function's transitive acquire-set: every mutex
	// class it may lock directly or through same-module callees.
	summary map[*types.Func]map[lockClass]bool
}

// name renders a class for findings.
func (lo *lockOrderPass) name(c lockClass) string {
	if n := lo.names[c]; n != "" {
		return n
	}
	return c.Name()
}

// lockCall classifies call as a mutex operation on a tracked class.
func lockCall(pkg *Package, call *ast.CallExpr) (lockClass, lockEvent) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, evNone
	}
	var ev lockEvent
	switch sel.Sel.Name {
	case "Lock":
		ev = evLock
	case "RLock":
		ev = evRLock
	case "Unlock":
		ev = evUnlock
	case "RUnlock":
		ev = evRUnlock
	default:
		return nil, evNone
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || !isMutexType(s.Recv()) {
		return nil, evNone
	}
	// Resolve the mutex expression to its class.
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if f := selField(pkg.Info, x); f != nil {
			return f, ev
		}
	case *ast.Ident:
		if v := pkgLevelVar(pkg.Info, x); v != nil && isMutexType(v.Type()) {
			return v, ev
		}
	}
	return nil, evNone
}

// buildSummaries computes every function's transitive acquire-set with
// a fixpoint over the static same-module call graph.
func (lo *lockOrderPass) buildSummaries() {
	callees := map[*types.Func][]*types.Func{}
	for fn, decl := range lo.bodies {
		pkg := lo.pkgOf(fn)
		acq := map[lockClass]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // literals run elsewhere
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cls, ev := lockCall(pkg, call); cls != nil && (ev == evLock || ev == evRLock) {
				acq[cls] = true
			}
			if callee := calleeFunc(pkg.Info, call); callee != nil {
				if _, inModule := lo.bodies[callee]; inModule {
					callees[fn] = append(callees[fn], callee)
				}
			}
			return true
		})
		lo.summary[fn] = acq
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			dst := lo.summary[fn]
			for _, c := range cs {
				for cls := range lo.summary[c] {
					if !dst[cls] {
						dst[cls] = true
						changed = true
					}
				}
			}
		}
	}
}

// pkgOf finds the loaded package owning fn.
func (lo *lockOrderPass) pkgOf(fn *types.Func) *Package {
	for _, p := range lo.m.Pkgs {
		if p.Pkg == fn.Pkg() {
			return p
		}
	}
	return nil
}

// hold is one held mutex with its acquisition mode and position.
type hold struct {
	cls    lockClass
	reader bool
	pos    token.Pos
}

// lockState is the abstract state of the sequential walk: the held
// stack and the unlocks registered by defer statements.
type lockState struct {
	held     []hold
	deferred []lockClass
}

func (s lockState) clone() lockState {
	return lockState{
		held:     append([]hold(nil), s.held...),
		deferred: append([]lockClass(nil), s.deferred...),
	}
}

// heldClasses lists the classes currently held.
func (s lockState) heldClasses() []hold { return s.held }

// release removes the most recent hold of cls.
func (s *lockState) release(cls lockClass) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].cls == cls {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// outstanding returns the held locks not covered by deferred unlocks.
func (s lockState) outstanding() []hold {
	comp := map[lockClass]int{}
	for _, c := range s.deferred {
		comp[c]++
	}
	var out []hold
	for _, h := range s.held {
		if comp[h.cls] > 0 {
			comp[h.cls]--
			continue
		}
		out = append(out, h)
	}
	return out
}

// sameHeld reports whether two states hold the same class multiset.
func sameHeld(a, b lockState) bool {
	if len(a.held) != len(b.held) {
		return false
	}
	count := map[lockClass]int{}
	for _, h := range a.held {
		count[h.cls]++
	}
	for _, h := range b.held {
		count[h.cls]--
	}
	for _, n := range count {
		if n != 0 {
			return false
		}
	}
	return true
}

// funcCtx is the per-function walk context.
type funcCtx struct {
	lo  *lockOrderPass
	pkg *Package
	out *[]Finding
}

// checkFunc runs the sequential held-set walk over one function body.
func (lo *lockOrderPass) checkFunc(pkg *Package, body *ast.BlockStmt, out *[]Finding) {
	fc := &funcCtx{lo: lo, pkg: pkg, out: out}
	end, terminated := fc.walkStmt(body, lockState{})
	if terminated {
		return
	}
	for _, h := range end.outstanding() {
		fc.report(h.pos, "%s locked but not unlocked before the function ends", lo.name(h.cls))
	}
}

func (fc *funcCtx) report(pos token.Pos, format string, args ...any) {
	*fc.out = append(*fc.out, Finding{
		Pos:      fc.lo.m.Fset.Position(pos),
		Analyzer: "lockorder",
		Message:  fmt.Sprintf(format, args...),
	})
}

// scanCalls processes the mutex and call events of an expression (or
// statement fragment), outside any nested block or function literal.
func (fc *funcCtx) scanCalls(n ast.Node, st *lockState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Visit arguments first: their calls happen before this one.
			for _, arg := range c.Args {
				fc.scanCalls(arg, st)
			}
			fc.handleCall(c, st)
			return false
		}
		return true
	})
}

// handleCall applies one call's effect on the lock state.
func (fc *funcCtx) handleCall(call *ast.CallExpr, st *lockState) {
	lo := fc.lo
	if cls, ev := lockCall(fc.pkg, call); cls != nil {
		switch ev {
		case evLock, evRLock:
			fc.checkAcquire(call.Pos(), cls, ev == evRLock, *st)
			st.held = append(st.held, hold{cls: cls, reader: ev == evRLock, pos: call.Pos()})
		case evUnlock, evRUnlock:
			st.release(cls)
		}
		return
	}
	callee := calleeFunc(fc.pkg.Info, call)
	if callee == nil {
		return
	}
	if _, ok := lo.bodies[callee]; !ok {
		return
	}
	if len(st.held) == 0 {
		return
	}
	for cls := range lo.summary[callee] {
		fc.checkAcquireVia(call.Pos(), cls, callee, *st)
	}
}

// checkAcquire reports order inversions and same-class reacquisition
// for a direct lock call.
func (fc *funcCtx) checkAcquire(pos token.Pos, cls lockClass, reader bool, st lockState) {
	lo := fc.lo
	for _, h := range st.held {
		if h.cls == cls {
			if reader && h.reader {
				continue // shared RLock-under-RLock
			}
			fc.report(pos, "acquiring %s while already holding it (potential self-deadlock)", lo.name(cls))
			continue
		}
		if lo.order[cls][h.cls] {
			fc.report(pos, "lock order inversion: acquiring %s while holding %s (declared order: %s before %s)",
				lo.name(cls), lo.name(h.cls), lo.name(cls), lo.name(h.cls))
		}
	}
}

// checkAcquireVia reports inversions caused by a callee's transitive
// acquisitions against the caller's held set.
func (fc *funcCtx) checkAcquireVia(pos token.Pos, cls lockClass, callee *types.Func, st lockState) {
	lo := fc.lo
	for _, h := range st.held {
		if lo.order[cls][h.cls] {
			fc.report(pos, "lock order inversion: call to %s acquires %s while holding %s (declared order: %s before %s)",
				callee.Name(), lo.name(cls), lo.name(h.cls), lo.name(cls), lo.name(h.cls))
		}
	}
}

// walkStmt interprets one statement, returning the resulting state and
// whether every path through it terminates (returns).
func (fc *funcCtx) walkStmt(stmt ast.Stmt, st lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case nil:
		return st, false
	case *ast.BlockStmt:
		for _, child := range s.List {
			var term bool
			st, term = fc.walkStmt(child, st)
			if term {
				return st, true
			}
		}
		return st, false
	case *ast.LabeledStmt:
		return fc.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		fc.scanCalls(s.Init, &st)
		fc.scanCalls(s.Cond, &st)
		thenSt, thenTerm := fc.walkStmt(s.Body, st.clone())
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = fc.walkStmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return fc.merge(s.End(), thenSt, elseSt), false
		}
	case *ast.ForStmt:
		fc.scanCalls(s.Init, &st)
		fc.scanCalls(s.Cond, &st)
		bodySt, bodyTerm := fc.walkStmt(s.Body, st.clone())
		fc.scanCalls(s.Post, &bodySt)
		if !bodyTerm && !sameHeld(st, bodySt) {
			fc.reportLoopImbalance(s.Pos(), st, bodySt)
		}
		// A condition-less loop only exits via return or break; break is
		// handled as a path terminator, so nothing falls through here.
		return st, s.Cond == nil
	case *ast.RangeStmt:
		fc.scanCalls(s.X, &st)
		bodySt, bodyTerm := fc.walkStmt(s.Body, st.clone())
		if !bodyTerm && !sameHeld(st, bodySt) {
			fc.reportLoopImbalance(s.Pos(), st, bodySt)
		}
		return st, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return fc.walkCases(stmt, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fc.scanCalls(r, &st)
		}
		for _, h := range st.outstanding() {
			fc.report(s.Pos(), "return while holding %s (locked at line %d; missing unlock on this path)",
				fc.lo.name(h.cls), fc.lo.m.Fset.Position(h.pos).Line)
		}
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; treat the
		// path as ended here rather than merging imprecisely.
		return st, true
	case *ast.DeferStmt:
		fc.walkDefer(s, &st)
		return st, false
	case *ast.GoStmt:
		// The goroutine has its own held set; literals are analyzed
		// separately. Only scan the call's operands evaluated here.
		for _, arg := range s.Call.Args {
			fc.scanCalls(arg, &st)
		}
		return st, false
	default:
		fc.scanCalls(stmt, &st)
		return st, false
	}
}

// walkCases handles switch/type-switch/select uniformly.
func (fc *funcCtx) walkCases(stmt ast.Stmt, st lockState) (lockState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	exhaustive := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		fc.scanCalls(s.Init, &st)
		fc.scanCalls(s.Tag, &st)
		body = s.Body
	case *ast.TypeSwitchStmt:
		fc.scanCalls(s.Init, &st)
		fc.scanCalls(s.Assign, &st)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		exhaustive = true // every select case is a real path; no fallthrough state
	}
	var live []lockState
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				fc.scanCalls(e, &st)
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			fc.scanCalls(c.Comm, &st)
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		caseSt, term := fc.walkStmt(&ast.BlockStmt{List: stmts}, st.clone())
		if !term {
			live = append(live, caseSt)
		}
	}
	if len(live) == 0 {
		if exhaustive || hasDefault {
			return st, true
		}
		return st, false // no case may match; fall through unchanged
	}
	merged := live[0]
	for _, other := range live[1:] {
		merged = fc.merge(stmt.End(), merged, other)
	}
	if !exhaustive && !hasDefault {
		merged = fc.merge(stmt.End(), merged, st)
	}
	return merged, false
}

// merge reconciles two live branch states. Disagreement about what is
// held is itself a finding (a lock released on one arm only); the walk
// continues with the larger held set so later returns still report.
func (fc *funcCtx) merge(pos token.Pos, a, b lockState) lockState {
	if sameHeld(a, b) {
		return a
	}
	count := map[lockClass]int{}
	for _, h := range a.held {
		count[h.cls]++
	}
	for _, h := range b.held {
		count[h.cls]--
	}
	for cls, n := range count {
		if n != 0 {
			fc.report(pos, "%s is held on some paths but not others at this merge point", fc.lo.name(cls))
		}
	}
	if len(b.held) > len(a.held) {
		return b
	}
	return a
}

// reportLoopImbalance reports a loop body that exits with a different
// held set than it entered with.
func (fc *funcCtx) reportLoopImbalance(pos token.Pos, entry, exit lockState) {
	count := map[lockClass]int{}
	for _, h := range exit.held {
		count[h.cls]++
	}
	for _, h := range entry.held {
		count[h.cls]--
	}
	for cls, n := range count {
		switch {
		case n > 0:
			fc.report(pos, "loop body acquires %s without releasing it before the next iteration", fc.lo.name(cls))
		case n < 0:
			fc.report(pos, "loop body releases %s it did not acquire this iteration", fc.lo.name(cls))
		}
	}
}

// walkDefer registers deferred unlocks as compensations and analyzes
// deferred literals for their own unlock content.
func (fc *funcCtx) walkDefer(s *ast.DeferStmt, st *lockState) {
	if cls, ev := lockCall(fc.pkg, s.Call); cls != nil {
		switch ev {
		case evUnlock, evRUnlock:
			st.deferred = append(st.deferred, cls)
		case evLock, evRLock:
			// defer mu.Lock() is almost certainly a typo'd unlock.
			fc.report(s.Pos(), "deferred %s acquisition of %s (did you mean Unlock?)", map[lockEvent]string{evLock: "Lock", evRLock: "RLock"}[ev], fc.lo.name(cls))
		}
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// Unlocks inside a deferred closure compensate the enclosing
		// function's holds (the common `defer func() { mu.Unlock() }()`).
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if cls, ev := lockCall(fc.pkg, call); cls != nil && (ev == evUnlock || ev == evRUnlock) {
					st.deferred = append(st.deferred, cls)
				}
			}
			return true
		})
		return
	}
	// Other deferred calls are evaluated for their argument effects only.
	for _, arg := range s.Call.Args {
		fc.scanCalls(arg, st)
	}
}
