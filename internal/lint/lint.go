// Package lint is the repository's invariant analyzer suite: a small,
// stdlib-only static-analysis framework (go/ast + go/parser + go/types,
// the same zero-dependency constraint cmd/doclint satisfies) plus the
// repo-specific analyzers that mechanically enforce the concurrency and
// pooling contracts documented in docs/ANALYSIS.md:
//
//   - atomicmix: a struct field whose address is passed to a sync/atomic
//     function anywhere in the module must never be plainly read or
//     written.
//   - lockorder: mutex acquisitions must respect the partial order
//     declared with //lint:lockorder directives, and every Lock must be
//     released on every return path.
//   - poolescape: values obtained from a sync.Pool (or a trivial pool
//     accessor) must not outlive the call that got them — no stores into
//     struct fields, package variables or channels, no returns and no
//     goroutine captures; broker-owned handler readings obey the same
//     rule.
//   - batchinsert: per-element Insert/Store/Push calls inside loops are
//     flagged when the receiver offers a batched sibling.
//
// Findings print vet-style (file:line:col) through cmd/invlint, which
// runs as `make lint` inside `make ci`. A finding is suppressed with an
// inline directive on the same line or the line directly above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: suppressions double as documentation of why
// the invariant is safe to break at that site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one invariant violation, positioned at the offending
// expression or statement.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding vet-style.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one module-wide invariant check.
type Analyzer struct {
	// Name is the short identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports every violation found in the module.
	Run func(m *Module) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicMix(),
		LockOrder(),
		PoolEscape(),
		BatchInsert(),
	}
}

// RunAll executes every analyzer, drops findings suppressed by ignore
// directives, and returns the rest sorted by position.
func RunAll(m *Module, analyzers []*Analyzer) []Finding {
	var out []Finding
	ignores := collectIgnores(m)
	for _, a := range analyzers {
		for _, f := range a.Run(m) {
			if ignores.suppressed(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreKey locates one suppression: a file, a line and the analyzer it
// silences.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreSet indexes every //lint:ignore directive in the module.
type ignoreSet map[ignoreKey]bool

// suppressed reports whether a directive on the finding's line, or on
// the line directly above it, names the finding's analyzer.
func (s ignoreSet) suppressed(f Finding) bool {
	return s[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}] ||
		s[ignoreKey{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}]
}

// collectIgnores parses the //lint:ignore directives of every file. A
// directive must carry a reason after the analyzer list; a bare
// suppression is itself reported by cmd/invlint via BadDirectives.
func collectIgnores(m *Module) ignoreSet {
	set := ignoreSet{}
	for _, d := range directives(m, "ignore") {
		fields := strings.Fields(d.args)
		if len(fields) < 2 {
			continue // malformed; surfaced by BadDirectives
		}
		for _, name := range strings.Split(fields[0], ",") {
			set[ignoreKey{d.pos.Filename, d.pos.Line, name}] = true
		}
	}
	return set
}

// BadDirectives reports malformed //lint:ignore directives (missing
// analyzer name or missing reason), so a suppression can never silently
// decay into a no-op.
func BadDirectives(m *Module) []Finding {
	var out []Finding
	for _, d := range directives(m, "ignore") {
		if len(strings.Fields(d.args)) < 2 {
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: "directive",
				Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
			})
		}
	}
	return out
}

// directive is one //lint:<verb> comment with its trailing arguments.
type directive struct {
	pos  token.Position
	args string
}

// directives returns every //lint:<verb> comment in the module, in file
// order.
func directives(m *Module, verb string) []directive {
	prefix := "//lint:" + verb
	var out []directive
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, prefix) {
						continue
					}
					rest := c.Text[len(prefix):]
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //lint:ignorefoo
					}
					out = append(out, directive{
						pos:  m.Fset.Position(c.Pos()),
						args: strings.TrimSpace(rest),
					})
				}
			}
		}
	}
	return out
}

// walkFuncs visits every function body in the module: declared functions
// and methods. Function literals are reachable from those bodies; the
// analyzers that need them descend explicitly.
func walkFuncs(m *Module, fn func(pkg *Package, decl *ast.FuncDecl)) {
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					fn(pkg, fd)
				}
			}
		}
	}
}
