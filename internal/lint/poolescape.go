package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape enforces the pooling ownership contract: a value obtained
// from a sync.Pool — directly via (*sync.Pool).Get or through a trivial
// accessor such as getTickContext that merely wraps one — must not
// outlive the function that got it. Once Put returns the value to the
// pool another goroutine may reuse it, so any retained reference is a
// use-after-recycle waiting to happen. Flagged escapes:
//
//   - storing the value (or anything derived from it: &x, x.field, *x,
//     x[i]) into a struct field or a package-level variable,
//   - sending it on a channel,
//   - returning it,
//   - handing it to a new goroutine (captured by the literal or passed
//     as an argument).
//
// Copying the data out is the sanctioned pattern and is recognized:
// append(dst, x...) element spreads, copy(dst, x), and len/cap queries
// never retain the pooled memory.
//
// The same rule covers the transport Handler contract: inside a
// function literal passed to SubscribeLocal, the message parameter's
// Readings slice is broker-owned pooled memory, valid only for the
// duration of the call.
func PoolEscape() *Analyzer {
	return &Analyzer{
		Name: "poolescape",
		Doc:  "sync.Pool values must not be retained past the acquiring call",
		Run:  runPoolEscape,
	}
}

func runPoolEscape(m *Module) []Finding {
	accessors := poolAccessors(m)
	var out []Finding
	walkFuncs(m, func(pkg *Package, decl *ast.FuncDecl) {
		pe := &poolEscapePass{
			m:         m,
			pkg:       pkg,
			accessors: accessors,
			pooled:    map[types.Object]bool{},
			out:       &out,
		}
		pe.run(decl.Body)
	})
	return out
}

// poolAccessors finds the module's trivial pool accessors: functions
// whose body is exactly one return of a pool-source expression (e.g.
// getTickContext wrapping tickCtxPool.Get). Calls to them count as pool
// sources themselves; chains of wrappers resolve by fixpoint.
func poolAccessors(m *Module) map[*types.Func]bool {
	accessors := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		walkFuncs(m, func(pkg *Package, decl *ast.FuncDecl) {
			fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok || accessors[fn] || len(decl.Body.List) != 1 {
				return
			}
			ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return
			}
			if isPoolSource(pkg.Info, ret.Results[0], accessors) {
				accessors[fn] = true
				changed = true
			}
		})
	}
	return accessors
}

// isPoolSource reports whether expr yields a pooled value: a
// (*sync.Pool).Get call, a call to a known trivial accessor, or a type
// assertion over either.
func isPoolSource(info *types.Info, expr ast.Expr, accessors map[*types.Func]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.TypeAssertExpr:
		return isPoolSource(info, e.X, accessors)
	case *ast.CallExpr:
		fn := calleeFunc(info, e)
		if fn == nil {
			return false
		}
		if fn.Name() == "Get" {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isNamed(sig.Recv().Type(), "sync", "Pool") {
				return true
			}
		}
		return accessors[fn]
	}
	return false
}

// poolEscapePass tracks one function's pooled values and reports their
// escapes. Closures share the enclosing function's pooled set (they
// close over the same variables); each FuncDecl starts fresh.
type poolEscapePass struct {
	m         *Module
	pkg       *Package
	accessors map[*types.Func]bool
	// pooled holds the variables currently known to alias pool memory.
	pooled map[types.Object]bool
	// handlerParams holds SubscribeLocal-literal message parameters whose
	// Readings field is broker-owned.
	handlerParams map[types.Object]bool
	out           *[]Finding
}

func (pe *poolEscapePass) run(body *ast.BlockStmt) {
	pe.handlerParams = map[types.Object]bool{}
	// Pass 1: seed pooled variables (and handler params), with a fixpoint
	// so local aliases (y := x) and aliases of msg.Readings are caught
	// regardless of statement order in nested closures.
	pe.markHandlerLiterals(body)
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pe.pkg.Info.Defs[id]
				if obj == nil {
					obj = pe.pkg.Info.Uses[id]
				}
				if obj == nil || pe.pooled[obj] {
					continue
				}
				if isPoolSource(pe.pkg.Info, assign.Rhs[i], pe.accessors) || pe.isPooledAlias(assign.Rhs[i]) {
					pe.pooled[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	// Pass 2: report escapes.
	pe.checkEscapes(body)
}

// markHandlerLiterals records the message parameters of function
// literals passed to SubscribeLocal: their Readings field is pooled.
func (pe *poolEscapePass) markHandlerLiterals(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "SubscribeLocal" {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			for _, field := range lit.Type.Params.List {
				for _, name := range field.Names {
					if obj := pe.pkg.Info.Defs[name]; obj != nil {
						pe.handlerParams[obj] = true
					}
				}
			}
		}
		return true
	})
}

// isPooledAlias reports whether expr is directly derived from a pooled
// variable: x, &x, *x, x.field, x[i], a type assertion over one, or a
// handler parameter's Readings selector.
func (pe *poolEscapePass) isPooledAlias(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pe.pkg.Info.Uses[e]
		return obj != nil && pe.pooled[obj]
	case *ast.UnaryExpr:
		return pe.isPooledAlias(e.X)
	case *ast.StarExpr:
		return pe.isPooledAlias(e.X)
	case *ast.IndexExpr:
		return pe.isPooledAlias(e.X)
	case *ast.SliceExpr:
		return pe.isPooledAlias(e.X)
	case *ast.TypeAssertExpr:
		return pe.isPooledAlias(e.X)
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && e.Sel.Name == "Readings" {
			if obj := pe.pkg.Info.Uses[id]; obj != nil && pe.handlerParams[obj] {
				return true
			}
		}
		return pe.isPooledAlias(e.X)
	}
	return false
}

// containsPooled reports whether any subexpression of expr aliases
// pooled memory, skipping the copying carve-outs (append element
// spread, copy, len, cap) and nested function literals (their bodies
// are checked as part of the same pass, with their own statements).
func (pe *poolEscapePass) containsPooled(expr ast.Expr) (ast.Expr, bool) {
	var found ast.Expr
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := builtinName(pe.pkg.Info, n); ok {
				switch name {
				case "len", "cap", "copy":
					return false // reads or copies elements, never retains
				case "append":
					if n.Ellipsis.IsValid() {
						// append(dst, x...) copies x's elements into dst.
						for _, arg := range n.Args[:len(n.Args)-1] {
							if e, ok := pe.containsPooled(arg); ok {
								found = e
							}
						}
						return false
					}
				}
			}
		case ast.Expr:
			if pe.isPooledAlias(n) {
				found = n
				return false
			}
		}
		return true
	})
	return found, found != nil
}

// builtinName resolves a call to the predeclared builtin it invokes.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// checkEscapes walks the function (including nested literals) and
// reports every statement that lets pooled memory outlive the call.
func (pe *poolEscapePass) checkEscapes(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			pe.checkAssign(n)
		case *ast.SendStmt:
			if e, ok := pe.containsPooled(n.Value); ok {
				pe.report(n.Pos(), "pooled value %s sent on a channel; the receiver outlives the pool ownership", render(pe.m, e))
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if e, ok := pe.containsPooled(r); ok {
					pe.report(n.Pos(), "pooled value %s returned; the caller would retain recycled memory", render(pe.m, e))
				}
			}
		case *ast.GoStmt:
			pe.checkGo(n)
		}
		return true
	})
}

// checkAssign reports stores of pooled memory into locations that
// outlive the function: struct fields and package-level variables.
func (pe *poolEscapePass) checkAssign(assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		if i >= len(assign.Rhs) {
			break // x, y := f() — a call result is never a tracked alias
		}
		var sink string
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if f := selField(pe.pkg.Info, l); f != nil && !pe.isPooledAlias(l.X) {
				sink = "struct field " + l.Sel.Name
			}
		case *ast.Ident:
			if v := pkgLevelVar(pe.pkg.Info, l); v != nil {
				sink = "package variable " + v.Name()
			}
		case *ast.IndexExpr:
			// m[k] = x where m is a field or package var.
			switch x := ast.Unparen(l.X).(type) {
			case *ast.SelectorExpr:
				if f := selField(pe.pkg.Info, x); f != nil && !pe.isPooledAlias(x.X) {
					sink = "struct field " + x.Sel.Name
				}
			case *ast.Ident:
				if v := pkgLevelVar(pe.pkg.Info, x); v != nil {
					sink = "package variable " + v.Name()
				}
			}
		}
		if sink == "" {
			continue
		}
		if e, ok := pe.containsPooled(assign.Rhs[i]); ok {
			pe.report(assign.Pos(), "pooled value %s stored into %s; it outlives the pool ownership", render(pe.m, e), sink)
		}
	}
}

// checkGo reports pooled memory handed to a new goroutine, either as a
// call argument or captured by the goroutine's function literal.
func (pe *poolEscapePass) checkGo(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if e, ok := pe.containsPooled(arg); ok {
			pe.report(g.Pos(), "pooled value %s passed to a goroutine; it may be recycled while the goroutine runs", render(pe.m, e))
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && pe.isPooledAlias(e) {
			pe.report(g.Pos(), "goroutine captures pooled value %s; it may be recycled while the goroutine runs", render(pe.m, e))
			return false
		}
		return true
	})
}

func (pe *poolEscapePass) report(pos token.Pos, format string, args ...any) {
	*pe.out = append(*pe.out, Finding{
		Pos:      pe.m.Fset.Position(pos),
		Analyzer: "poolescape",
		Message:  fmt.Sprintf(format, args...),
	})
}

// render prints a small expression for a finding message.
func render(m *Module, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	default:
		return "derived from a pool"
	}
}
