// Fixture for the atomicmix analyzer: counter.n is accessed through
// sync/atomic in incr, so every plain access elsewhere is a finding;
// counter.safe and the typed atomic.Int64 field are clean.
package fixture

import "sync/atomic"

type counter struct {
	n     int64
	safe  int64
	typed atomic.Int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) bad() int64 {
	c.n++      // want "plain access to fixture.counter.n"
	return c.n // want "plain access to fixture.counter.n"
}

func (c *counter) badWrite() {
	c.n = 0 // want "plain access to fixture.counter.n"
}

func (c *counter) good() int64 {
	c.safe++ // clean: safe is never accessed atomically
	c.typed.Add(1)
	return atomic.LoadInt64(&c.n) + c.typed.Load()
}
