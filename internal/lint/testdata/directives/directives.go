// Fixture for the //lint:ignore machinery: a well-formed suppression
// silences its finding, a malformed one (missing reason) suppresses
// nothing and is itself reported.
package fixture

type db struct{}

func (db) Insert(v int) {}

func (d db) InsertBatch(vs []int) {
	for _, v := range vs {
		d.Insert(v)
	}
}

func suppressed(d db, vs []int) {
	for _, v := range vs {
		//lint:ignore batchinsert fixture exercises a sanctioned suppression
		d.Insert(v) // clean: suppressed by the directive above
	}
}

func suppressedSameLine(d db, vs []int) {
	for _, v := range vs {
		d.Insert(v) //lint:ignore batchinsert same-line suppression form
	}
}

func malformed(d db, vs []int) {
	for _, v := range vs {
		//lint:ignore batchinsert
		// want-above "malformed //lint:ignore"
		d.Insert(v) // want "per-element Insert call in a loop"
	}
}
