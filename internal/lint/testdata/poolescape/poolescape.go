// Fixture for the poolescape analyzer: every way pooled memory can
// outlive its acquiring call, plus the sanctioned copy-out patterns and
// the SubscribeLocal handler contract.
package fixture

import "sync"

type wrap struct{ buf []byte }

var pool = sync.Pool{New: func() any { return &wrap{} }}

// get is a trivial pool accessor: its callers' values are pooled too.
func get() *wrap { return pool.Get().(*wrap) }

type holder struct{ kept *wrap }

var global *wrap

func leakField(h *holder) {
	w := get()
	h.kept = w // want "pooled value w stored into struct field kept"
	pool.Put(w)
}

func leakGlobal() {
	w := pool.Get().(*wrap)
	global = w // want "pooled value w stored into package variable global"
}

func leakAlias(h *holder) {
	w := get()
	alias := w
	h.kept = alias // want "pooled value alias stored into struct field kept"
}

func leakChan(ch chan *wrap) {
	w := get()
	ch <- w // want "pooled value w sent on a channel"
}

func leakReturn() *wrap {
	w := get()
	return w // want "pooled value w returned"
}

func leakGo() {
	w := get()
	go func() { // want "goroutine captures pooled value w"
		_ = w.buf
	}()
}

func leakGoArg(f func(*wrap)) {
	w := get()
	go f(w) // want "pooled value w passed to a goroutine"
}

func okCopyOut(dst []byte) []byte {
	w := get()
	dst = append(dst, w.buf...) // clean: element spread copies
	n := make([]byte, len(w.buf))
	copy(n, w.buf) // clean: copy copies
	pool.Put(w)
	return dst
}

func okScoped() int {
	w := get()
	defer pool.Put(w)
	return len(w.buf) // clean: len retains nothing
}

// The transport Handler contract: readings handed to a SubscribeLocal
// handler are broker-owned pooled memory.

type message struct{ Readings []int }

type bus struct{}

func (bus) SubscribeLocal(h func(message)) {}

var keptReadings []int

func leakHandler(b bus) {
	b.SubscribeLocal(func(m message) {
		keptReadings = m.Readings // want "stored into package variable keptReadings"
	})
}

func okHandler(b bus) {
	b.SubscribeLocal(func(m message) {
		tmp := make([]int, len(m.Readings))
		copy(tmp, m.Readings) // clean: handler copies before retaining
		keptReadings = tmp
	})
}
