// Fixture for the batchinsert analyzer: per-element calls in loops are
// findings exactly when the receiver offers a batched sibling, except
// inside the sibling's own implementation.
package fixture

type db struct{}

func (db) Insert(v int) {}

func (d db) InsertBatch(vs []int) {
	for _, v := range vs {
		d.Insert(v) // clean: the batched sibling's own implementation
	}
}

type sink struct{}

func (sink) Push(v int)          {}
func (sink) PushBatch(vs []int)  {}
func (sink) PushSeries(vs []int) {}

type plain struct{}

func (plain) Insert(v int) {}

func loopInsert(d db, vs []int) {
	for _, v := range vs {
		d.Insert(v) // want "per-element Insert call in a loop"
	}
}

func loopPush(s sink, n int) {
	for i := 0; i < n; i++ {
		s.Push(i) // want "per-element Push call in a loop"
	}
}

func nestedLoop(d db, vs [][]int) {
	for _, row := range vs {
		for _, v := range row {
			d.Insert(v) // want "per-element Insert call in a loop"
		}
	}
}

func noSibling(p plain, vs []int) {
	for _, v := range vs {
		p.Insert(v) // clean: no batched sibling on the receiver
	}
}

func notInLoop(d db, v int) {
	d.Insert(v) // clean: not in a loop
}

func literalResetsDepth(d db, vs []int) []func() {
	var fns []func()
	for _, v := range vs {
		v := v
		fns = append(fns, func() { d.Insert(v) }) // clean: the literal runs at an unknown point
	}
	return fns
}
