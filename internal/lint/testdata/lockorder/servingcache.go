// Fixture for a chained serving-cache hierarchy, modeled on
// internal/resultcache: version registry < per-topic state < LRU
// stripe, with the stripe as a leaf that must never wrap the version
// locks (Get revalidates after releasing it).
package fixture

import "sync"

//lint:lockorder registry.mu < topicVer.mu
//lint:lockorder topicVer.mu < stripe.mu

type registry struct{ mu sync.RWMutex }
type topicVer struct{ mu sync.Mutex }
type stripe struct{ mu sync.Mutex }

// noteFeed is the write-through invalidation shape: the registry's
// shared lock wraps the per-topic update. Clean.
func noteFeed(r *registry, tv *topicVer) {
	r.mu.RLock()
	tv.mu.Lock()
	tv.mu.Unlock()
	r.mu.RUnlock()
}

// getRevalidate is the lookup discipline: the stripe lock is fully
// released before the version locks are consulted. Clean.
func getRevalidate(s *stripe, r *registry) {
	s.mu.Lock()
	s.mu.Unlock()
	r.mu.RLock()
	r.mu.RUnlock()
}

// revalidateUnderStripe is the violation the lookup discipline exists
// to rule out: per-topic state taken under the LRU stripe.
func revalidateUnderStripe(s *stripe, tv *topicVer) {
	s.mu.Lock()
	tv.mu.Lock() // want "lock order inversion: acquiring fixture.topicVer.mu while holding fixture.stripe.mu"
	tv.mu.Unlock()
	s.mu.Unlock()
}

// registryUnderStripe inverts the chain transitively: the registry sits
// two levels above the stripe.
func registryUnderStripe(s *stripe, r *registry) {
	s.mu.Lock()
	r.mu.Lock() // want "lock order inversion: acquiring fixture.registry.mu while holding fixture.stripe.mu"
	r.mu.Unlock()
	s.mu.Unlock()
}
