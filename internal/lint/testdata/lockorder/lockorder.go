// Fixture for the lockorder analyzer: a three-level declared hierarchy
// plus the unlock-on-every-path rules.
package fixture

import "sync"

//lint:lockorder outer.mu < inner.mu < leaf.mu

type outer struct{ mu sync.Mutex }
type inner struct{ mu sync.Mutex }
type leaf struct{ mu sync.Mutex }

func ok(a *outer, b *inner) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func inverted(a *outer, b *inner) {
	b.mu.Lock()
	a.mu.Lock() // want "lock order inversion: acquiring fixture.outer.mu while holding fixture.inner.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

func transitiveInverted(a *outer, c *leaf) {
	c.mu.Lock()
	a.mu.Lock() // want "lock order inversion: acquiring fixture.outer.mu while holding fixture.leaf.mu"
	a.mu.Unlock()
	c.mu.Unlock()
}

func viaHelper(a *outer, b *inner) {
	b.mu.Lock()
	lockOuter(a) // want "call to lockOuter acquires fixture.outer.mu while holding fixture.inner.mu"
	b.mu.Unlock()
}

func lockOuter(a *outer) {
	a.mu.Lock()
	a.mu.Unlock()
}

func missingUnlockOnReturn(a *outer, cond bool) {
	a.mu.Lock()
	if cond {
		return // want "return while holding fixture.outer.mu"
	}
	a.mu.Unlock()
}

func leaked(a *outer) {
	a.mu.Lock() // want "locked but not unlocked before the function ends"
}

func deferred(a *outer) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return 1
}

func selfDeadlock(a *outer) {
	a.mu.Lock()
	a.mu.Lock() // want "acquiring fixture.outer.mu while already holding it"
	a.mu.Unlock()
	a.mu.Unlock()
}

type rw struct{ mu sync.RWMutex }

func sharedReaders(r *rw) {
	r.mu.RLock()
	r.mu.RLock() // clean: shared read locks may nest
	r.mu.RUnlock()
	r.mu.RUnlock()
}

func unbalancedBranches(a *outer, cond bool) {
	a.mu.Lock()
	if cond {
		a.mu.Unlock()
	} // want "fixture.outer.mu is held on some paths but not others"
	a.mu.Unlock()
}
