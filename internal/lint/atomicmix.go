package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces the atomics-only field discipline: once any code in
// the module passes a struct field's address to a sync/atomic function,
// every other access to that field must go through sync/atomic too. A
// plain read can observe a torn or stale value and a plain write races
// the atomic users — exactly the discipline the tsdb head-stripe
// counters (headN/headSince before they became atomic.Int64) rely on.
//
// Fields of the typed atomic kinds (atomic.Int64, atomic.Pointer, ...)
// are safe by construction and need no analysis: their representation is
// unexported, so a plain access does not compile. The analyzer exists
// for the legacy pattern atomic.AddInt64(&s.n, 1), which the compiler
// accepts alongside s.n++.
//
// The only exempt context is a composite-literal key (S{n: 0}): zero
// initialization happens before the value is shared.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "fields passed to sync/atomic functions must never be plainly accessed",
		Run:  runAtomicMix,
	}
}

func runAtomicMix(m *Module) []Finding {
	// Pass 1: collect the atomic-disciplined fields — struct fields whose
	// address appears as an argument of a sync/atomic function — and the
	// selector nodes that constitute those sanctioned accesses.
	disciplined := map[*types.Var]token.Position{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods of the typed atomics are safe
				}
				for _, arg := range call.Args {
					unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || unary.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if f := selField(info, sel); f != nil {
						if _, seen := disciplined[f]; !seen {
							disciplined[f] = m.Fset.Position(call.Pos())
						}
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}
	if len(disciplined) == 0 {
		return nil
	}

	// Pass 2: every other selector resolving to a disciplined field is a
	// plain access. Composite-literal initialization (S{n: 0}) is exempt
	// by construction: literal keys are plain identifiers, never
	// selectors, so they cannot match here.
	names := fieldNames(m)
	var out []Finding
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				reportPlain(m, info, n, disciplined, sanctioned, names, &out)
				return true
			})
		}
	}
	return out
}

// reportPlain appends a finding when n is a selector that plainly
// accesses a disciplined field.
func reportPlain(m *Module, info *types.Info, n ast.Node, disciplined map[*types.Var]token.Position,
	sanctioned map[*ast.SelectorExpr]bool, names map[*types.Var]string, out *[]Finding) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok || sanctioned[sel] {
		return
	}
	f := selField(info, sel)
	if f == nil {
		return
	}
	atomicAt, ok := disciplined[f]
	if !ok {
		return
	}
	name := names[f]
	if name == "" {
		name = f.Name()
	}
	*out = append(*out, Finding{
		Pos:      m.Fset.Position(sel.Pos()),
		Analyzer: "atomicmix",
		Message: fmt.Sprintf("plain access to %s, which is accessed atomically at %s:%d; use sync/atomic for every access",
			name, atomicAt.Filename, atomicAt.Line),
	})
}
