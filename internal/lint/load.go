package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Dir is the package directory (as given to Load).
	Dir string
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's resolution maps for Files.
	Info *types.Info
}

// Module is the analysis unit handed to every analyzer: all requested
// packages, type-checked against one shared FileSet so objects and
// positions are comparable across packages.
type Module struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs holds the loaded packages sorted by import path.
	Pkgs []*Package

	byPath map[string]*Package
}

// Load parses and type-checks the module rooted at root. With no dirs,
// every package directory under root is loaded (testdata and hidden
// directories are skipped, _test.go files are excluded — the analyzers
// enforce invariants on shipped code). With dirs, only those directories
// plus their intra-module dependencies are loaded.
//
// Type checking resolves module-internal imports from the loaded
// packages and everything else (the standard library) through the
// go/types source importer, keeping the loader free of external
// dependencies and of compiled export data.
func Load(root string, dirs []string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: map[string]*Package{},
	}
	if len(dirs) == 0 {
		if dirs, err = packageDirs(root); err != nil {
			return nil, err
		}
	}
	// Parse the requested directories, then chase intra-module imports
	// until the dependency closure is parsed too.
	queue := append([]string(nil), dirs...)
	seen := map[string]bool{}
	for len(queue) > 0 {
		dir := queue[0]
		queue = queue[1:]
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if seen[abs] {
			continue
		}
		seen[abs] = true
		pkg, err := m.parseDir(abs)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		m.Pkgs = append(m.Pkgs, pkg)
		m.byPath[pkg.ImportPath] = pkg
		for _, imp := range moduleImports(pkg, modPath) {
			queue = append(queue, filepath.Join(root, strings.TrimPrefix(strings.TrimPrefix(imp, modPath), "/")))
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].ImportPath < m.Pkgs[j].ImportPath })
	ordered, err := m.topoOrder()
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		mod: m,
		std: importer.ForCompiler(m.Fset, "source", nil).(types.ImporterFrom),
	}
	for _, pkg := range ordered {
		if err := m.check(pkg, imp); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// modulePath reads the module path from root's go.mod. A missing go.mod
// degrades to the synthetic path "fixture", which lets the fixture
// runner load bare testdata directories as single-package modules.
func modulePath(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		if os.IsNotExist(err) {
			return "fixture", nil
		}
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// packageDirs returns every directory under root holding at least one
// buildable non-test Go file.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses the buildable non-test Go files of one directory, or
// returns nil when there are none.
func (m *Module) parseDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build tags and GOOS/GOARCH file
		// suffixes) so mutually-exclusive files such as
		// tsdb/lockfile{,_other}.go never collide in one package.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	importPath := m.Path
	if rel != "." {
		importPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	return &Package{Dir: dir, ImportPath: importPath, Files: files}, nil
}

// moduleImports lists pkg's imports that resolve inside the module.
func moduleImports(pkg *Package, modPath string) []string {
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				out = append(out, path)
			}
		}
	}
	return out
}

// topoOrder sorts packages so every package follows its intra-module
// dependencies; import cycles are reported rather than looping.
func (m *Module) topoOrder() ([]*Package, error) {
	const (
		white = iota // unvisited
		grey         // on the visit stack
		black        // done
	)
	state := map[*Package]int{}
	var ordered []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case grey:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		case black:
			return nil
		}
		state[p] = grey
		for _, imp := range moduleImports(p, m.Path) {
			if dep, ok := m.byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = black
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// check type-checks one parsed package.
func (m *Module) check(pkg *Package, imp types.ImporterFrom) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.ImportPath, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.ImportPath, err)
	}
	pkg.Pkg = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves module-internal imports from the loaded
// packages and delegates the rest to the stdlib source importer.
type moduleImporter struct {
	mod *Module
	std types.ImporterFrom
}

// Import implements types.Importer.
func (im *moduleImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.mod.Root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (im *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := im.mod.byPath[path]; ok {
		if p.Pkg == nil {
			return nil, fmt.Errorf("lint: %s imported before it was checked", path)
		}
		return p.Pkg, nil
	}
	return im.std.ImportFrom(path, im.mod.Root, 0)
}
