package lint

import (
	"go/ast"
	"go/types"
)

// isNamed reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// selField resolves a selector expression to the struct field it
// denotes, or nil when it is not a direct field selection.
func selField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	obj := s.Obj()
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// pkgLevelVar resolves an identifier to the package-level variable it
// uses, or nil.
func pkgLevelVar(info *types.Info, id *ast.Ident) *types.Var {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// calleeFunc resolves a call expression to the static *types.Func it
// invokes (package function or method), or nil for dynamic calls,
// builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// fieldNames maps every struct field object declared in the module to a
// human-readable "pkg.Type.field" label for findings.
func fieldNames(m *Module) map[*types.Var]string {
	names := map[*types.Var]string{}
	for _, pkg := range m.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				names[f] = pkg.Pkg.Name() + "." + name + "." + f.Name()
			}
		}
	}
	return names
}

// methodSetHas reports whether type t (or *t) has a method with the
// given name.
func methodSetHas(t types.Type, name string) bool {
	for _, mt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(mt)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

// funcBodies maps every declared function and method of the module to
// its body, for call-graph construction.
func funcBodies(m *Module) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	walkFuncs(m, func(pkg *Package, decl *ast.FuncDecl) {
		if f, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
			out[f] = decl
		}
	})
	return out
}
