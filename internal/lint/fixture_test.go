package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestFixtures drives every analyzer over its golden fixture package
// under testdata/. Expectations live in the fixtures themselves as
//
//	expr // want "regexp"
//
// comments: every finding must land on a line carrying a want comment
// whose pattern matches the message, and every want must be matched by
// exactly one finding. The variant `// want-above "regexp"` anchors the
// expectation to the preceding line, for findings positioned on comment
// directives. Lines without a want comment must stay clean.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir       string
		analyzers []*Analyzer
	}{
		{"atomicmix", []*Analyzer{AtomicMix()}},
		{"lockorder", []*Analyzer{LockOrder()}},
		{"poolescape", []*Analyzer{PoolEscape()}},
		{"batchinsert", []*Analyzer{BatchInsert()}},
		// The directive fixture runs the full suite plus the malformed-
		// directive check, proving suppression end to end.
		{"directives", Analyzers()},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			root := filepath.Join("testdata", tc.dir)
			m, err := Load(root, nil)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			findings := RunAll(m, tc.analyzers)
			findings = append(findings, BadDirectives(m)...)
			checkWants(t, root, findings)
		})
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want(-above)? "((?:[^"\\]|\\.)*)"`)

// parseWants scans the fixture directory's Go files for want comments.
func parseWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(root, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, match := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(match[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, match[2], err)
				}
				at := line
				if match[1] == "-above" {
					at = line - 1
				}
				wants = append(wants, &want{file: e.Name(), line: at, pattern: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// checkWants matches findings against expectations one-to-one.
func checkWants(t *testing.T, root string, findings []Finding) {
	t.Helper()
	wants := parseWants(t, root)
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == f.Pos.Line && w.pattern.MatchString(f.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", filepath.Join(root, w.file), w.line, w.pattern)
		}
	}
}
