package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// batchSiblings maps a per-element method name to the batched entry
// points that supersede it inside loops. These are the repo's batching
// seams: store.Backend/tsdb.DB grew InsertBatch, cache.Cache grew
// StoreBatch and the sink layer grew PushBatch/PushSeries so the hot
// ingest and tick paths take each lock once per batch instead of once
// per reading.
var batchSiblings = map[string][]string{
	"Insert": {"InsertBatch"},
	"Store":  {"StoreBatch"},
	"Push":   {"PushBatch", "PushSeries"},
}

// BatchInsert flags per-element Insert/Store/Push calls inside loops
// when the receiver's method set offers a batched sibling
// (InsertBatch/StoreBatch/PushBatch/PushSeries): each per-element call
// pays the receiver's lock and lookup once per reading, which is
// exactly the convoying the batched entry points were built to remove.
//
// The batched sibling's own implementation is exempt — a PushBatch that
// degrades single-element runs to Push is the batching layer, not a
// caller that missed it.
func BatchInsert() *Analyzer {
	return &Analyzer{
		Name: "batchinsert",
		Doc:  "per-element Insert/Store/Push in a loop where a batched sibling exists",
		Run:  runBatchInsert,
	}
}

func runBatchInsert(m *Module) []Finding {
	var out []Finding
	walkFuncs(m, func(pkg *Package, decl *ast.FuncDecl) {
		// Inside the body of a batched entry point, per-element calls are
		// the implementation pattern.
		exempt := map[string]bool{}
		for single, batched := range batchSiblings {
			for _, b := range batched {
				if decl.Name.Name == b {
					exempt[single] = true
				}
			}
		}
		var walk func(n ast.Node, loopDepth int)
		walk = func(n ast.Node, loopDepth int) {
			switch n := n.(type) {
			case nil:
				return
			case *ast.ForStmt:
				walk(n.Init, loopDepth)
				walk(n.Cond, loopDepth)
				walk(n.Post, loopDepth)
				walk(n.Body, loopDepth+1)
				return
			case *ast.RangeStmt:
				walk(n.X, loopDepth)
				walk(n.Body, loopDepth+1)
				return
			case *ast.FuncLit:
				// A literal's execution point is unknowable here; start it
				// at depth zero rather than inheriting the enclosing loop.
				walk(n.Body, 0)
				return
			case *ast.CallExpr:
				if loopDepth > 0 {
					if f := perElementCall(m, pkg, n, exempt); f != nil {
						out = append(out, *f)
					}
				}
			}
			// Generic descent.
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				walk(c, loopDepth)
				return false
			})
		}
		walk(decl.Body, 0)
	})
	return out
}

// perElementCall reports a per-element call whose receiver offers a
// batched sibling, or nil.
func perElementCall(m *Module, pkg *Package, call *ast.CallExpr, exempt map[string]bool) *Finding {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	siblings, ok := batchSiblings[name]
	if !ok || exempt[name] {
		return nil
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	recv := s.Recv()
	for _, sib := range siblings {
		if methodSetHas(recv, sib) {
			return &Finding{
				Pos:      m.Fset.Position(call.Pos()),
				Analyzer: "batchinsert",
				Message: fmt.Sprintf("per-element %s call in a loop; %s has %s — batch the loop body instead",
					name, types.TypeString(recv, shortQualifier), sib),
			}
		}
	}
	return nil
}

// shortQualifier renders package-qualified type names with the bare
// package name, keeping findings readable.
func shortQualifier(p *types.Package) string { return p.Name() }
