package cache

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// reduce folds a copied view into an AggResult — the reference the
// in-place aggregation views must match.
func reduce(rs []sensor.Reading) store.AggResult {
	var a store.AggResult
	for _, r := range rs {
		a.Observe(r.Value)
	}
	return a
}

// TestCacheAggregateMatchesViews drives the aggregation views against
// reductions of the copying views they mirror, across the ring's wrap
// point (capacity 64, 100 stored readings).
func TestCacheAggregateMatchesViews(t *testing.T) {
	c := New(64, time.Second)
	if a := c.AggregateRelative(time.Minute); a.Count != 0 {
		t.Fatalf("empty cache aggregate = %+v", a)
	}
	for i := 0; i < 100; i++ {
		c.Store(sensor.Reading{Time: int64(i) * int64(time.Second), Value: float64((i * 31) % 17)})
	}
	for _, lookback := range []time.Duration{0, time.Second, 10 * time.Second, 5 * time.Minute} {
		got := c.AggregateRelative(lookback)
		want := reduce(c.ViewRelative(lookback, nil))
		if got != want {
			t.Fatalf("AggregateRelative(%v) = %+v, view reduce %+v", lookback, got, want)
		}
		if avg, ok := c.Average(lookback); !ok || avg != got.Sum/float64(got.Count) {
			t.Fatalf("Average(%v) = %v, %v; aggregate says %v", lookback, avg, ok, got.Sum/float64(got.Count))
		}
	}
	sec := int64(time.Second)
	for _, w := range [][2]int64{{0, 99 * sec}, {40 * sec, 60 * sec}, {90 * sec, 300 * sec}, {10 * sec, 5 * sec}} {
		got := c.AggregateAbsolute(w[0], w[1])
		want := reduce(c.ViewAbsolute(w[0], w[1], nil))
		if got != want {
			t.Fatalf("AggregateAbsolute(%d, %d) = %+v, view reduce %+v", w[0], w[1], got, want)
		}
	}
}

// TestCacheDownsampleAbsolute checks bucket alignment and the
// non-empty-only contract against a hand-computed expectation.
func TestCacheDownsampleAbsolute(t *testing.T) {
	c := New(128, time.Second)
	sec := int64(time.Second)
	for i := 0; i < 20; i++ {
		c.Store(sensor.Reading{Time: int64(i) * sec, Value: float64(i)})
	}
	got := c.DownsampleAbsolute(0, 19*sec, 5*sec, nil)
	if len(got) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(got))
	}
	for k, b := range got {
		if b.Start != int64(k)*5*sec || b.Count != 5 {
			t.Fatalf("bucket %d = %+v", k, b)
		}
		if wantSum := float64(5*k*5 + 10); b.Sum != wantSum {
			t.Fatalf("bucket %d sum = %v, want %v", k, b.Sum, wantSum)
		}
	}
	if got := c.DownsampleAbsolute(0, 19*sec, 0, nil); got != nil {
		t.Fatalf("step 0 yielded buckets: %+v", got)
	}
	// A window past the data yields nothing.
	if got := c.DownsampleAbsolute(100*sec, 200*sec, 5*sec, nil); len(got) != 0 {
		t.Fatalf("out-of-range window yielded %+v", got)
	}
}
