package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// TestSetConcurrentGetOrCreate verifies that racing GetOrCreate calls for
// the same topic agree on one cache, across many topics spread over the
// shards. Run under -race this exercises the sharded lock discipline.
func TestSetConcurrentGetOrCreate(t *testing.T) {
	s := NewSet()
	const topics = 200
	const racers = 4
	results := make([][]*Cache, racers)
	var wg sync.WaitGroup
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]*Cache, topics)
			for i := 0; i < topics; i++ {
				j := i % 20
				topic := sensor.Topic(fmt.Sprintf("/r%d/n%d/power", j/10, j%10))
				results[g][i] = s.GetOrCreate(topic, 16, time.Second)
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < topics; i++ {
		for g := 1; g < racers; g++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("topic %d: racer %d got a different cache", i, g)
			}
		}
	}
	if s.Len() != 20 { // 200 iterations over 20 distinct topics
		t.Fatalf("Len = %d, want 20", s.Len())
	}
}

// TestSetConcurrentStoreQueryTopics mixes the three operations that race
// in production: pusher sampling (Store), operator queries (Get) and
// discovery (Topics/Len), while caches are still being created.
func TestSetConcurrentStoreQueryTopics(t *testing.T) {
	s := NewSet()
	const n = 64
	topics := make([]sensor.Topic, n)
	for i := range topics {
		topics[i] = sensor.Topic(fmt.Sprintf("/rack/node%02d/power", i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Creators + writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				topic := topics[(k+g)%n]
				c := s.GetOrCreate(topic, 32, time.Second)
				c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * int64(time.Second)})
				s.Store(topic, sensor.Reading{Value: float64(k), Time: int64(k+1) * int64(time.Second)})
			}
		}(g)
	}
	// Readers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]sensor.Reading, 0, 64)
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if c, ok := s.Get(topics[(k+g)%n]); ok {
					buf = c.ViewRelative(10*time.Second, buf[:0])
					_, _ = c.Latest()
				}
			}
		}(g)
	}
	// Discovery.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := len(s.Topics()); got > n {
				t.Errorf("Topics returned %d, more than the %d ever created", got, n)
				return
			}
			_ = s.Len()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	if got := len(s.Topics()); got != n {
		t.Fatalf("Topics = %d, want %d", got, n)
	}
}

// TestSetShardDistribution guards against a degenerate hash: realistic
// component-path topics must spread over many shards, otherwise sharding
// buys nothing.
func TestSetShardDistribution(t *testing.T) {
	s := NewSet()
	used := map[*setShard]bool{}
	for r := 0; r < 12; r++ {
		for n := 0; n < 12; n++ {
			topic := sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", r, n))
			used[s.shard(topic)] = true
		}
	}
	if len(used) < setShards/2 {
		t.Fatalf("144 topics landed on only %d of %d shards", len(used), setShards)
	}
}
