// Package cache implements the in-memory sensor caches used by DCDB
// pushers and collect agents for fast access to recent readings.
//
// Each sensor owns one Cache: a fixed-capacity ring buffer of readings
// ordered by insertion time. The cache supports the two view modes of the
// Wintermute Query Engine (paper §V-B):
//
//   - relative mode: timestamps are offsets against the most recent
//     reading; because the cache knows its nominal sampling interval, the
//     slice bounds of the view are computed in O(1);
//   - absolute mode: explicit timestamp ranges resolved with binary search
//     over the buffered readings, O(log N).
package cache

import (
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// Cache is a concurrency-safe ring buffer of readings for one sensor.
// The zero value is not usable; construct with New.
type Cache struct {
	mu       sync.RWMutex
	buf      []sensor.Reading
	start    int // index of oldest reading
	size     int // number of valid readings
	interval time.Duration
}

// New creates a cache holding up to capacity readings sampled at the given
// nominal interval. DCDB sizes caches by retention time; NewForRetention
// offers that convenience. New panics on non-positive capacity or interval,
// since both indicate a configuration bug.
func New(capacity int, interval time.Duration) *Cache {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	if interval <= 0 {
		panic("cache: interval must be positive")
	}
	return &Cache{
		buf:      make([]sensor.Reading, capacity),
		interval: interval,
	}
}

// NewForRetention creates a cache able to retain `retain` worth of readings
// sampled at `interval`, e.g. NewForRetention(180*time.Second, time.Second)
// holds 180 readings — the configuration used in the paper's evaluation.
func NewForRetention(retain, interval time.Duration) *Cache {
	n := int(retain / interval)
	if n < 1 {
		n = 1
	}
	return New(n, interval)
}

// Interval returns the nominal sampling interval of the cached sensor.
func (c *Cache) Interval() time.Duration { return c.interval }

// Capacity returns the maximum number of readings the cache can hold.
func (c *Cache) Capacity() int { return len(c.buf) }

// Len returns the number of readings currently cached.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size
}

// Store appends a reading, evicting the oldest one once the cache is full.
// Readings are expected to arrive in non-decreasing timestamp order (the
// pusher sampling loop guarantees this); out-of-order readings are still
// stored but degrade absolute-mode lookups to the enclosing range.
func (c *Cache) Store(r sensor.Reading) {
	c.mu.Lock()
	c.store(r)
	c.mu.Unlock()
}

// StoreBatch appends several readings under a single lock acquisition —
// the batched-sink entry point, one lock per delivery instead of one per
// reading.
func (c *Cache) StoreBatch(rs []sensor.Reading) {
	if len(rs) == 0 {
		return
	}
	c.mu.Lock()
	for _, r := range rs {
		c.store(r)
	}
	c.mu.Unlock()
}

// store appends one reading. Callers must hold c.mu.
func (c *Cache) store(r sensor.Reading) {
	if c.size < len(c.buf) {
		c.buf[(c.start+c.size)%len(c.buf)] = r
		c.size++
	} else {
		c.buf[c.start] = r
		c.start = (c.start + 1) % len(c.buf)
	}
}

// Latest returns the most recent reading, if any.
func (c *Cache) Latest() (sensor.Reading, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.size == 0 {
		return sensor.Reading{}, false
	}
	return c.at(c.size - 1), true
}

// Oldest returns the oldest cached reading, if any.
func (c *Cache) Oldest() (sensor.Reading, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.size == 0 {
		return sensor.Reading{}, false
	}
	return c.at(0), true
}

// at returns the i-th reading in chronological order (0 = oldest).
// Callers must hold c.mu.
func (c *Cache) at(i int) sensor.Reading {
	return c.buf[(c.start+i)%len(c.buf)]
}

// ViewRelative appends to dst the readings covering the window
// [latest-lookback, latest] and returns the extended slice. The slice
// bounds are derived from the nominal sampling interval in O(1); only the
// copy into dst is linear in the result size. A lookback of 0 yields just
// the most recent reading, matching the "query interval 0" configuration
// of the paper's Figure 5.
func (c *Cache) ViewRelative(lookback time.Duration, dst []sensor.Reading) []sensor.Reading {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.size == 0 {
		return dst
	}
	n := int(lookback/c.interval) + 1
	if n > c.size {
		n = c.size
	}
	return c.appendRange(dst, c.size-n, c.size)
}

// ViewAbsolute appends to dst the readings with timestamps in [t0, t1]
// (nanoseconds, inclusive) and returns the extended slice. Bounds are
// located with binary search, O(log N).
func (c *Cache) ViewAbsolute(t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.size == 0 || t1 < t0 {
		return dst
	}
	lo := c.searchGE(t0)
	hi := c.searchGE(t1 + 1)
	return c.appendRange(dst, lo, hi)
}

// searchGE returns the smallest chronological index whose timestamp is
// >= t, or c.size if none. Callers must hold c.mu.
func (c *Cache) searchGE(t int64) int {
	lo, hi := 0, c.size
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.at(mid).Time < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// appendRange copies chronological indices [lo, hi) into dst. Callers must
// hold c.mu. The copy is performed in at most two memmoves across the ring
// wrap point.
func (c *Cache) appendRange(dst []sensor.Reading, lo, hi int) []sensor.Reading {
	if lo >= hi {
		return dst
	}
	first := (c.start + lo) % len(c.buf)
	last := (c.start + hi - 1) % len(c.buf)
	if first <= last {
		return append(dst, c.buf[first:last+1]...)
	}
	dst = append(dst, c.buf[first:]...)
	return append(dst, c.buf[:last+1]...)
}

// Average returns the mean value over the relative window [latest-lookback,
// latest]. It exists to back the REST /average endpoint that DCDB exposes
// on caches. ok is false when the cache is empty.
func (c *Cache) Average(lookback time.Duration) (avg float64, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.size == 0 {
		return 0, false
	}
	n := int(lookback/c.interval) + 1
	if n > c.size {
		n = c.size
	}
	var sum float64
	for i := c.size - n; i < c.size; i++ {
		sum += c.at(i).Value
	}
	return sum / float64(n), true
}

// setShards is the number of hash shards in a Set; a power of two so the
// shard index is a mask. 64 shards keep the probability of two hot topics
// colliding low even on many-core nodes, at ~64 map headers of overhead.
const setShards = 64

type setShard struct {
	mu     sync.RWMutex
	caches map[sensor.Topic]*Cache
}

// Set is a concurrency-safe collection of caches keyed by sensor topic.
// Pushers and collect agents each own one Set; the Query Engine consults it
// before falling back to the storage backend.
//
// The set is hash-sharded by topic: lookups and inserts for different
// sensors land on different locks, so pusher sampling loops and the
// operator worker pool querying thousands of sensors do not contend on a
// single global mutex.
type Set struct {
	shards [setShards]setShard
}

// NewSet creates an empty cache set.
func NewSet() *Set {
	s := &Set{}
	for i := range s.shards {
		s.shards[i].caches = make(map[sensor.Topic]*Cache)
	}
	return s
}

// shard maps a topic to its shard with FNV-1a over the topic bytes.
func (s *Set) shard(topic sensor.Topic) *setShard {
	return &s.shards[topic.Hash()&(setShards-1)]
}

// GetOrCreate returns the cache for topic, creating it with the given
// parameters if absent. Existing caches keep their original parameters.
func (s *Set) GetOrCreate(topic sensor.Topic, capacity int, interval time.Duration) *Cache {
	sh := s.shard(topic)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok := sh.caches[topic]; ok {
		return c
	}
	c := New(capacity, interval)
	sh.caches[topic] = c
	return c
}

// Get returns the cache for topic, if present.
func (s *Set) Get(topic sensor.Topic) (*Cache, bool) {
	sh := s.shard(topic)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.caches[topic]
	return c, ok
}

// Store appends a reading to the cache for topic, if one exists. It
// reports whether the reading was cached.
func (s *Set) Store(topic sensor.Topic, r sensor.Reading) bool {
	if c, ok := s.Get(topic); ok {
		c.Store(r)
		return true
	}
	return false
}

// Topics returns the topics of all caches in the set, in no particular
// order. The snapshot is per-shard consistent, not global: topics created
// concurrently may or may not appear. All 64 shards are traversed exactly
// once; the slice grows as shards are visited rather than pre-sizing via
// Len(), which would lock every shard a second time.
func (s *Set) Topics() []sensor.Topic {
	var out []sensor.Topic
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		if out == nil {
			// Seed capacity from the first shard: with FNV spreading the
			// topics evenly, shard size times shard count approximates the
			// total without a second locking pass.
			out = make([]sensor.Topic, 0, (len(sh.caches)+1)*setShards)
		}
		for t := range sh.caches {
			out = append(out, t)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Len returns the number of caches in the set.
func (s *Set) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.caches)
		sh.mu.RUnlock()
	}
	return n
}
