package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

const sec = int64(time.Second)

// fill stores n readings with value i and timestamp i seconds.
func fill(c *Cache, n int) {
	for i := 0; i < n; i++ {
		c.Store(sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
}

func TestStoreAndLatest(t *testing.T) {
	c := New(4, time.Second)
	if _, ok := c.Latest(); ok {
		t.Fatal("empty cache should have no latest")
	}
	fill(c, 3)
	r, ok := c.Latest()
	if !ok || r.Value != 2 {
		t.Fatalf("Latest = %+v, %v", r, ok)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEviction(t *testing.T) {
	c := New(4, time.Second)
	fill(c, 10)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	oldest, _ := c.Oldest()
	latest, _ := c.Latest()
	if oldest.Value != 6 || latest.Value != 9 {
		t.Fatalf("oldest/latest = %v/%v, want 6/9", oldest.Value, latest.Value)
	}
}

func TestViewRelative(t *testing.T) {
	c := New(16, time.Second)
	fill(c, 10)
	// Lookback 0 -> only the newest reading.
	got := c.ViewRelative(0, nil)
	if len(got) != 1 || got[0].Value != 9 {
		t.Fatalf("lookback 0: %+v", got)
	}
	// Lookback 3s -> 4 readings (6..9).
	got = c.ViewRelative(3*time.Second, nil)
	if len(got) != 4 || got[0].Value != 6 || got[3].Value != 9 {
		t.Fatalf("lookback 3s: %+v", got)
	}
	// Lookback larger than history -> everything.
	got = c.ViewRelative(time.Hour, nil)
	if len(got) != 10 {
		t.Fatalf("lookback 1h: %d readings", len(got))
	}
}

func TestViewRelativeAcrossWrap(t *testing.T) {
	c := New(8, time.Second)
	fill(c, 13) // readings 5..12 survive, buffer wrapped
	got := c.ViewRelative(time.Hour, nil)
	if len(got) != 8 {
		t.Fatalf("got %d readings", len(got))
	}
	for i, r := range got {
		if r.Value != float64(5+i) {
			t.Fatalf("reading %d = %v, want %d (chronological order)", i, r.Value, 5+i)
		}
	}
}

func TestViewAbsolute(t *testing.T) {
	c := New(32, time.Second)
	fill(c, 20)
	got := c.ViewAbsolute(5*sec, 8*sec, nil)
	if len(got) != 4 || got[0].Value != 5 || got[3].Value != 8 {
		t.Fatalf("absolute [5s,8s]: %+v", got)
	}
	// Range before all data.
	if got := c.ViewAbsolute(-10*sec, -1*sec, nil); len(got) != 0 {
		t.Fatalf("range before data: %+v", got)
	}
	// Range after all data.
	if got := c.ViewAbsolute(100*sec, 200*sec, nil); len(got) != 0 {
		t.Fatalf("range after data: %+v", got)
	}
	// Inverted range.
	if got := c.ViewAbsolute(8*sec, 5*sec, nil); len(got) != 0 {
		t.Fatalf("inverted range: %+v", got)
	}
	// Exact single point.
	got = c.ViewAbsolute(7*sec, 7*sec, nil)
	if len(got) != 1 || got[0].Value != 7 {
		t.Fatalf("point query: %+v", got)
	}
}

func TestViewAbsoluteAfterEviction(t *testing.T) {
	c := New(8, time.Second)
	fill(c, 20) // 12..19 remain
	got := c.ViewAbsolute(0, 13*sec, nil)
	if len(got) != 2 || got[0].Value != 12 || got[1].Value != 13 {
		t.Fatalf("absolute after eviction: %+v", got)
	}
}

// TestViewModesAgree is the key invariant behind Figure 5: relative and
// absolute modes must return identical data for equivalent windows.
func TestViewModesAgree(t *testing.T) {
	f := func(capSeed, nSeed, lookSeed uint16) bool {
		capacity := int(capSeed%64) + 2
		n := int(nSeed % 200)
		look := time.Duration(lookSeed%100) * time.Second
		c := New(capacity, time.Second)
		fill(c, n)
		rel := c.ViewRelative(look, nil)
		latest, ok := c.Latest()
		if !ok {
			return len(rel) == 0
		}
		abs := c.ViewAbsolute(latest.Time-int64(look), latest.Time, nil)
		if len(rel) != len(abs) {
			return false
		}
		for i := range rel {
			if rel[i] != abs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestChronologicalOrderProperty checks that views are always sorted by
// timestamp regardless of ring wrap state.
func TestChronologicalOrderProperty(t *testing.T) {
	f := func(capSeed, nSeed uint16) bool {
		capacity := int(capSeed%32) + 1
		n := int(nSeed % 150)
		c := New(capacity, time.Second)
		fill(c, n)
		v := c.ViewRelative(time.Hour, nil)
		for i := 1; i < len(v); i++ {
			if v[i].Time < v[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDstReuse(t *testing.T) {
	c := New(8, time.Second)
	fill(c, 8)
	buf := make([]sensor.Reading, 0, 16)
	got := c.ViewRelative(time.Hour, buf)
	if len(got) != 8 {
		t.Fatalf("got %d", len(got))
	}
	if cap(got) != cap(buf) {
		t.Errorf("view should reuse caller buffer when capacity allows")
	}
}

func TestAverage(t *testing.T) {
	c := New(16, time.Second)
	fill(c, 10) // values 0..9
	avg, ok := c.Average(3 * time.Second)
	if !ok {
		t.Fatal("Average not ok")
	}
	want := (6.0 + 7 + 8 + 9) / 4
	if avg != want {
		t.Fatalf("Average = %v, want %v", avg, want)
	}
	empty := New(4, time.Second)
	if _, ok := empty.Average(time.Second); ok {
		t.Error("Average of empty cache should not be ok")
	}
}

func TestNewForRetention(t *testing.T) {
	c := NewForRetention(180*time.Second, time.Second)
	if c.Capacity() != 180 {
		t.Errorf("Capacity = %d, want 180", c.Capacity())
	}
	c = NewForRetention(time.Millisecond, time.Second)
	if c.Capacity() != 1 {
		t.Errorf("Capacity = %d, want at least 1", c.Capacity())
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, time.Second) },
		func() { New(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	c1 := s.GetOrCreate("/n1/power", 8, time.Second)
	c2 := s.GetOrCreate("/n1/power", 16, time.Second)
	if c1 != c2 {
		t.Error("GetOrCreate should return the existing cache")
	}
	if c2.Capacity() != 8 {
		t.Error("existing cache parameters must be preserved")
	}
	if !s.Store("/n1/power", sensor.Reading{Value: 1, Time: 1}) {
		t.Error("Store to existing cache should succeed")
	}
	if s.Store("/nope", sensor.Reading{}) {
		t.Error("Store to missing cache should report false")
	}
	if got, ok := s.Get("/n1/power"); !ok || got != c1 {
		t.Error("Get mismatch")
	}
	if len(s.Topics()) != 1 {
		t.Error("Topics length mismatch")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128, time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			c.Store(sensor.Reading{Value: float64(i), Time: int64(i)})
		}
	}()
	var buf []sensor.Reading
	for i := 0; i < 2000; i++ {
		buf = c.ViewRelative(time.Second, buf[:0])
		c.ViewAbsolute(0, int64(i), nil)
		c.Latest()
		c.Average(time.Second)
	}
	<-done
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	rng := rand.New(rand.NewSource(1))
	topics := []sensor.Topic{"/a", "/b", "/c", "/d"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			s.GetOrCreate(topics[rng.Intn(len(topics))], 16, time.Second)
		}
	}()
	for i := 0; i < 2000; i++ {
		for _, tp := range topics {
			s.Store(tp, sensor.Reading{Value: 1, Time: int64(i)})
		}
		s.Topics()
	}
	<-done
}
