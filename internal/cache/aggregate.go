package cache

import (
	"time"

	"github.com/dcdb/wintermute/internal/store"
)

// Aggregation views over the ring buffer. Like the View methods they
// mirror, these come in the two Query Engine modes — relative (O(1)
// bounds from the nominal sampling interval) and absolute (O(log N)
// binary search) — but reduce the window in place instead of copying
// readings out, so the aggregate tick path and the REST /query
// aggregation endpoint touch no per-reading memory outside the ring.

// AggregateRelative reduces the window [latest-lookback, latest] to an
// AggResult in one pass. The window bounds are derived from the nominal
// sampling interval exactly as in ViewRelative; the result is empty
// when the cache is.
func (c *Cache) AggregateRelative(lookback time.Duration) store.AggResult {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var a store.AggResult
	if c.size == 0 {
		return a
	}
	n := int(lookback/c.interval) + 1
	if n > c.size {
		n = c.size
	}
	for i := c.size - n; i < c.size; i++ {
		a.Observe(c.at(i).Value)
	}
	return a
}

// AggregateAbsolute reduces the readings with timestamps in [t0, t1]
// (inclusive) to an AggResult, locating the bounds by binary search.
func (c *Cache) AggregateAbsolute(t0, t1 int64) store.AggResult {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var a store.AggResult
	if c.size == 0 || t1 < t0 {
		return a
	}
	lo := c.searchGE(t0)
	hi := c.searchGE(t1 + 1)
	for i := lo; i < hi; i++ {
		a.Observe(c.at(i).Value)
	}
	return a
}

// DownsampleAbsolute reduces the readings with timestamps in [t0, t1]
// into consecutive buckets of width step aligned to t0, appending only
// non-empty buckets to dst in time order (the semantics of
// store.Aggregator.Downsample).
func (c *Cache) DownsampleAbsolute(t0, t1, step int64, dst []store.Bucket) []store.Bucket {
	if step <= 0 || t1 < t0 {
		return dst
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	lo := c.searchGE(t0)
	hi := c.searchGE(t1 + 1)
	for i := lo; i < hi; {
		k := (c.at(i).Time - t0) / step
		var a store.AggResult
		for i < hi && (c.at(i).Time-t0)/step == k {
			a.Observe(c.at(i).Value)
			i++
		}
		dst = append(dst, store.Bucket{Start: t0 + k*step, AggResult: a})
	}
	return dst
}
