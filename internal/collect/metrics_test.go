package collect

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/transport"
)

// TestAgentMetricsRegistered wires an instrumented agent end to end:
// broker-delivered batches must show up in the ingest series and the
// storage gauges must reflect the backend after a scrape.
func TestAgentMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	a, err := New(Config{
		ListenMQTT: "127.0.0.1:0",
		StoreDir:   t.TempDir(),
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	c, err := transport.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	batch := []sensor.Reading{{Value: 1, Time: 1}, {Value: 2, Time: 2}, {Value: 3, Time: 3}}
	if err := c.Publish("/rx/n1/temp", batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.Store.Count("/rx/n1/temp") < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("store count = %d, want 3", a.Store.Count("/rx/n1/temp"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	for name, want := range map[string]float64{
		"dcdb_ingest_batches_total":   1,
		"dcdb_ingest_readings_total":  3,
		"dcdb_broker_readings_total":  3,
		"dcdb_tsdb_wal_appends_total": 1,
	} {
		if v, ok := reg.Value(name); !ok || v != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, v, ok, want)
		}
	}
	// Frame count includes the connection handshake; at least the
	// publish frame plus something must have arrived.
	if v, ok := reg.Value("dcdb_broker_frames_total"); !ok || v < 1 {
		t.Errorf("dcdb_broker_frames_total = %v (ok=%v), want >= 1", v, ok)
	}
	// The storage gauges fill on a snapshot (their updater runs then).
	reg.Snapshot(func(*telemetry.Sample) {})
	if v, ok := reg.Value("dcdb_storage_readings"); !ok || v != 3 {
		t.Errorf("dcdb_storage_readings = %v (ok=%v), want 3", v, ok)
	}
}

// TestSelfMonitorRoundTrip is the monitor-monitoring-itself loop: the
// registry republishes into the agent's own sensor pipeline, and the
// resulting /telemetry/# topics answer GET /query like any sensor.
func TestSelfMonitorRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	a, err := New(Config{
		Metrics:          reg,
		SelfMonitorEvery: time.Hour, // loop armed but driven manually
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.SelfMon == nil {
		t.Fatal("self-monitor not created")
	}

	// Feed some data so the ingest counters are non-zero, then publish
	// one telemetry pass into the sink.
	for i := 0; i < 5; i++ {
		a.Ingest("/r1/n1/power", sensor.Reading{Value: float64(i), Time: int64(i)})
	}
	a.SelfMon.PublishOnce(time.Now())

	// The registry's own series are now sensors: in the tree, the cache
	// and the store.
	topic := sensor.Topic("/telemetry/dcdb_storage_readings")
	if !a.Nav.HasSensor(topic) {
		t.Fatalf("self-monitor topic %s not in sensor tree; have %v", topic, a.Nav.AllSensors())
	}
	latest, ok := a.QE.Latest(topic)
	if !ok {
		t.Fatalf("no reading for %s", topic)
	}
	if latest.Value != 5 {
		t.Fatalf("%s = %v, want 5 (the readings stored before the pass)", topic, latest.Value)
	}

	// Round-trip through the serving tier: GET /query over the wildcard.
	srv := httptest.NewServer(rest.NewHandler(a.Manager, a.QE, rest.Options{Metrics: reg}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?sensor=/telemetry/%23&op=count&lookback=1h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Sensors []struct {
			Sensor sensor.Topic `json:"sensor"`
			Count  int64        `json:"count"`
		} `json:"sensors"`
		Combined struct {
			Count int64 `json:"count"`
		} `json:"combined"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out.Combined.Count == 0 {
		t.Fatalf("wildcard query over /telemetry/#: status %d, combined %+v", resp.StatusCode, out.Combined)
	}
	found := false
	for _, s := range out.Sensors {
		if strings.HasPrefix(string(s.Sensor), "/telemetry/dcdb_") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dcdb_ series among %d fanned-out telemetry sensors", len(out.Sensors))
	}

	// A second pass keeps publishing into the same series (no duplicate
	// sensor registration, newer timestamps win).
	a.SelfMon.PublishOnce(time.Now().Add(time.Second))
	if n := a.Store.Count(topic); n < 2 {
		t.Fatalf("expected repeated publishes to accumulate, count = %d", n)
	}
}

// TestAgentNilRegistryInert pins the no-telemetry path: a nil registry
// wires nothing, and closing the agent twice stays safe.
func TestAgentNilRegistryInert(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.SelfMon != nil {
		t.Fatal("self-monitor must need an explicit interval and registry")
	}
	a.Ingest("/s", sensor.Reading{Value: 1, Time: 1})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
