package collect

import (
	"fmt"
	"testing"

	"github.com/dcdb/wintermute/internal/sensor"
)

func TestDedupAdmit(t *testing.T) {
	d := newDedup()
	// Unversioned batches carry no identity and always pass.
	for i := 0; i < 3; i++ {
		if !d.admit(0, "/a", 0) {
			t.Fatal("epoch-0 batch rejected")
		}
	}
	// Fresh sequences admit, replays do not.
	if !d.admit(7, "/a", 1) || !d.admit(7, "/a", 2) {
		t.Fatal("fresh sequences rejected")
	}
	if d.admit(7, "/a", 2) || d.admit(7, "/a", 1) {
		t.Fatal("replayed sequence admitted")
	}
	if !d.admit(7, "/a", 5) {
		t.Fatal("sequence after gap rejected (gaps are legal)")
	}
	// Marks are per topic and per epoch.
	if !d.admit(7, "/b", 1) {
		t.Fatal("other topic blocked by /a's mark")
	}
	if !d.admit(8, "/a", 1) {
		t.Fatal("other epoch blocked by epoch 7's mark")
	}
}

func TestDedupEviction(t *testing.T) {
	d := newDedup()
	for i := 1; i <= maxDedupEpochs+10; i++ {
		if !d.admit(uint64(i), "/t", 1) {
			t.Fatalf("epoch %d rejected", i)
		}
	}
	if got := d.size(); got != maxDedupEpochs {
		t.Fatalf("tracked %d epochs, want cap %d", got, maxDedupEpochs)
	}
	// The oldest epochs were evicted; a replay from one is re-admitted
	// (duplicate, not loss — the documented failure direction).
	if !d.admit(1, "/t", 1) {
		t.Fatal("evicted epoch's replay rejected")
	}
	// Recently active epochs keep their marks.
	if d.admit(maxDedupEpochs+10, "/t", 1) {
		t.Fatal("live epoch's replay admitted")
	}
}

func TestDedupManyTopics(t *testing.T) {
	d := newDedup()
	for i := 0; i < 100; i++ {
		topic := sensor.Topic(fmt.Sprintf("/node%d/power", i))
		for seq := uint64(1); seq <= 3; seq++ {
			if !d.admit(42, topic, seq) {
				t.Fatalf("fresh (%s, %d) rejected", topic, seq)
			}
		}
		if d.admit(42, topic, 3) {
			t.Fatalf("replayed (%s, 3) admitted", topic)
		}
	}
}
