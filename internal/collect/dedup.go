package collect

import (
	"sync"

	"github.com/dcdb/wintermute/internal/sensor"
)

// maxDedupEpochs bounds the number of client epochs tracked at once.
// One epoch is one pusher incarnation, so the bound is really "restarts
// remembered between agent restarts" — 4096 outlives any realistic
// churn while keeping the table small. On overflow the
// least-recently-active epoch is evicted; a late redelivery from an
// evicted epoch would then be re-admitted (duplicate, not loss), which
// is the right failure direction for an at-least-once pipeline.
const maxDedupEpochs = 4096

// dedup turns the transport's at-least-once delivery into exactly-once
// ingest: a per-(client-epoch, topic) sequence high-water mark. A
// reliable client assigns sequences monotonically at publish time and
// redelivers in the original order after a reconnect, so on any given
// topic the sequences arrive non-decreasing with duplicates exactly on
// the redelivered prefix — a batch is new iff its sequence is above the
// topic's mark. Unversioned publishers (epoch 0) carry no identity and
// are always admitted.
type dedup struct {
	mu     sync.Mutex
	epochs map[uint64]*epochMarks
	tick   uint64 // admission clock for least-recently-active eviction
}

// epochMarks is one client incarnation's per-topic high-water marks.
type epochMarks struct {
	topics map[sensor.Topic]uint64
	seen   uint64 // tick of the last admission touching this epoch
}

func newDedup() *dedup {
	return &dedup{epochs: make(map[uint64]*epochMarks)}
}

// admit reports whether the batch (epoch, seq) on topic has not been
// ingested before, advancing the topic's mark when it has not.
func (d *dedup) admit(epoch uint64, topic sensor.Topic, seq uint64) bool {
	if epoch == 0 {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.epochs[epoch]
	if e == nil {
		if len(d.epochs) >= maxDedupEpochs {
			d.evictOldestLocked()
		}
		e = &epochMarks{topics: make(map[sensor.Topic]uint64)}
		d.epochs[epoch] = e
	}
	d.tick++
	e.seen = d.tick
	if seq <= e.topics[topic] {
		return false
	}
	e.topics[topic] = seq
	return true
}

// evictOldestLocked drops the least-recently-active epoch. Callers hold
// d.mu.
func (d *dedup) evictOldestLocked() {
	var (
		oldest uint64
		minT   uint64
		first  = true
	)
	for epoch, e := range d.epochs {
		if first || e.seen < minT {
			oldest, minT, first = epoch, e.seen, false
		}
	}
	delete(d.epochs, oldest)
}

// size reports the number of tracked epochs (for the telemetry gauge).
func (d *dedup) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.epochs)
}
