// Package collect implements the DCDB Collect Agent: the data broker that
// receives sensor readings from Pushers over the MQTT-style transport,
// forwards them to the Storage Backend, maintains system-wide sensor
// caches, and embeds the Wintermute framework with visibility of the
// entire system's sensor space (paper §IV-A).
//
// Operators instantiated in a Collect Agent read from the local caches
// when possible and from the Storage Backend otherwise — the location
// "optimal for system or infrastructure-level analysis and feedback
// loops".
package collect

import (
	"fmt"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/transport"
	"github.com/dcdb/wintermute/internal/tsdb"
)

// Config parameterises a Collect Agent.
type Config struct {
	// ListenMQTT is the broker listen address (e.g. "127.0.0.1:0");
	// empty runs the agent without a network broker (in-process ingest
	// only).
	ListenMQTT string
	// CacheRetention sizes the system-wide sensor caches (default 180 s).
	CacheRetention time.Duration
	// StoreDir selects the persistent Storage Backend: when set, the
	// agent opens an embedded tsdb database in this directory (WAL +
	// compressed segments, crash-recovered on start) instead of the
	// bounded in-memory store.
	StoreDir string
	// StoreRetention is the time window the persistent backend keeps
	// (0 = forever). Only meaningful with StoreDir.
	StoreRetention time.Duration
	// StoreMax caps readings kept per sensor in the in-memory Storage
	// Backend (0 = unlimited). Only meaningful without StoreDir.
	StoreMax int
	// StoreWALSync fsyncs the tsdb write-ahead log on every append
	// (durability against OS crashes, at a large insert cost).
	StoreWALSync bool
	// Threads sizes the Wintermute worker pool executing operator
	// computations (0: runtime.GOMAXPROCS).
	Threads int
	// Env is handed to Wintermute plugin configurators (job providers
	// attach here).
	Env core.Env
}

// Agent is a running Collect Agent.
type Agent struct {
	Nav     *navigator.Navigator
	Caches  *cache.Set
	Store   store.Backend
	QE      *core.QueryEngine
	Manager *core.Manager
	Broker  *transport.Broker

	// DB is the persistent backend, nil when the agent runs in-memory.
	DB *tsdb.DB

	sink *core.CacheSink
}

// New creates a Collect Agent and, when configured, starts its broker.
func New(cfg Config) (*Agent, error) {
	if cfg.CacheRetention <= 0 {
		cfg.CacheRetention = 180 * time.Second
	}
	nav := navigator.New()
	caches := cache.NewSet()
	var (
		st store.Backend
		db *tsdb.DB
	)
	if cfg.StoreDir != "" {
		var err error
		db, err = tsdb.Open(cfg.StoreDir, tsdb.Options{
			Retention: cfg.StoreRetention,
			WALSync:   cfg.StoreWALSync,
		})
		if err != nil {
			return nil, fmt.Errorf("collect: opening storage backend: %w", err)
		}
		st = db
	} else {
		st = store.New(cfg.StoreMax)
	}
	qe := core.NewQueryEngine(nav, caches, st)
	sink := core.NewCacheSink(caches, nav, int(cfg.CacheRetention/time.Second), time.Second)
	sink.Store = st
	a := &Agent{
		Nav:    nav,
		Caches: caches,
		Store:  st,
		DB:     db,
		QE:     qe,
		sink:   sink,
	}
	// A recovered backend already knows its sensors: rebuild the tree so
	// pattern-based operator units bind immediately after a restart.
	if db != nil {
		for _, topic := range db.Topics() {
			_ = nav.AddSensor(topic)
		}
	}
	a.Manager = core.NewManager(qe, sink, cfg.Env)
	if cfg.Threads > 0 {
		a.Manager.SetThreads(cfg.Threads)
	}
	if cfg.ListenMQTT != "" {
		b, err := transport.NewBroker(cfg.ListenMQTT)
		if err != nil {
			if db != nil {
				db.Close() // release the janitor and directory lock
			}
			return nil, fmt.Errorf("collect: starting broker: %w", err)
		}
		a.Broker = b
		b.SubscribeLocal("#", func(m transport.Message) {
			// One delivered message becomes one batched sink push: the
			// topic's cache, store series and navigator registration are
			// each touched once per message, not once per reading.
			a.IngestBatch(m.Topic, m.Readings)
		})
	}
	return a, nil
}

// Addr returns the broker address, or "" when no broker is running.
func (a *Agent) Addr() string {
	if a.Broker == nil {
		return ""
	}
	return a.Broker.Addr()
}

// Sink returns the agent's reading sink (caches + store).
func (a *Agent) Sink() core.Sink { return a.sink }

// Ingest feeds one reading into the agent as if it had arrived over MQTT:
// it lands in the sensor tree, the cache and the Storage Backend.
func (a *Agent) Ingest(topic sensor.Topic, r sensor.Reading) {
	a.sink.Push(topic, r)
}

// IngestBatch feeds a series of readings for one topic into the agent,
// taking the cache and store locks once for the whole batch.
func (a *Agent) IngestBatch(topic sensor.Topic, rs []sensor.Reading) {
	a.sink.PushSeries(topic, rs)
}

// TickOnce synchronously runs one Wintermute computation round.
func (a *Agent) TickOnce(now time.Time) error {
	return a.Manager.TickAll(now)
}

// Start launches the Wintermute operator loops.
func (a *Agent) Start() { a.Manager.Start() }

// Close stops operators, shuts the Wintermute worker pool down, closes
// the broker and, for a persistent agent, flushes and closes the storage
// backend.
func (a *Agent) Close() error {
	a.Manager.Close()
	var err error
	if a.Broker != nil {
		err = a.Broker.Close()
	}
	if a.DB != nil {
		if derr := a.DB.Close(); err == nil {
			err = derr
		}
	}
	return err
}
