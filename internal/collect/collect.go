// Package collect implements the DCDB Collect Agent: the data broker that
// receives sensor readings from Pushers over the MQTT-style transport,
// forwards them to the Storage Backend, maintains system-wide sensor
// caches, and embeds the Wintermute framework with visibility of the
// entire system's sensor space (paper §IV-A).
//
// Operators instantiated in a Collect Agent read from the local caches
// when possible and from the Storage Backend otherwise — the location
// "optimal for system or infrastructure-level analysis and feedback
// loops".
package collect

import (
	"fmt"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/transport"
)

// Config parameterises a Collect Agent.
type Config struct {
	// ListenMQTT is the broker listen address (e.g. "127.0.0.1:0");
	// empty runs the agent without a network broker (in-process ingest
	// only).
	ListenMQTT string
	// CacheRetention sizes the system-wide sensor caches (default 180 s).
	CacheRetention time.Duration
	// StoreRetention caps readings kept per sensor in the Storage
	// Backend (0 = unlimited).
	StoreRetention int
	// Threads sizes the Wintermute worker pool executing operator
	// computations (0: runtime.GOMAXPROCS).
	Threads int
	// Env is handed to Wintermute plugin configurators (job providers
	// attach here).
	Env core.Env
}

// Agent is a running Collect Agent.
type Agent struct {
	Nav     *navigator.Navigator
	Caches  *cache.Set
	Store   *store.Store
	QE      *core.QueryEngine
	Manager *core.Manager
	Broker  *transport.Broker

	sink *core.CacheSink
}

// New creates a Collect Agent and, when configured, starts its broker.
func New(cfg Config) (*Agent, error) {
	if cfg.CacheRetention <= 0 {
		cfg.CacheRetention = 180 * time.Second
	}
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(cfg.StoreRetention)
	qe := core.NewQueryEngine(nav, caches, st)
	sink := core.NewCacheSink(caches, nav, int(cfg.CacheRetention/time.Second), time.Second)
	sink.Store = st
	a := &Agent{
		Nav:    nav,
		Caches: caches,
		Store:  st,
		QE:     qe,
		sink:   sink,
	}
	a.Manager = core.NewManager(qe, sink, cfg.Env)
	if cfg.Threads > 0 {
		a.Manager.SetThreads(cfg.Threads)
	}
	if cfg.ListenMQTT != "" {
		b, err := transport.NewBroker(cfg.ListenMQTT)
		if err != nil {
			return nil, fmt.Errorf("collect: starting broker: %w", err)
		}
		a.Broker = b
		b.SubscribeLocal("#", func(m transport.Message) {
			// One delivered message becomes one batched sink push: the
			// topic's cache, store series and navigator registration are
			// each touched once per message, not once per reading.
			a.IngestBatch(m.Topic, m.Readings)
		})
	}
	return a, nil
}

// Addr returns the broker address, or "" when no broker is running.
func (a *Agent) Addr() string {
	if a.Broker == nil {
		return ""
	}
	return a.Broker.Addr()
}

// Sink returns the agent's reading sink (caches + store).
func (a *Agent) Sink() core.Sink { return a.sink }

// Ingest feeds one reading into the agent as if it had arrived over MQTT:
// it lands in the sensor tree, the cache and the Storage Backend.
func (a *Agent) Ingest(topic sensor.Topic, r sensor.Reading) {
	a.sink.Push(topic, r)
}

// IngestBatch feeds a series of readings for one topic into the agent,
// taking the cache and store locks once for the whole batch.
func (a *Agent) IngestBatch(topic sensor.Topic, rs []sensor.Reading) {
	a.sink.PushSeries(topic, rs)
}

// TickOnce synchronously runs one Wintermute computation round.
func (a *Agent) TickOnce(now time.Time) error {
	return a.Manager.TickAll(now)
}

// Start launches the Wintermute operator loops.
func (a *Agent) Start() { a.Manager.Start() }

// Close stops operators, shuts the Wintermute worker pool down, and
// closes the broker.
func (a *Agent) Close() error {
	a.Manager.Close()
	if a.Broker != nil {
		return a.Broker.Close()
	}
	return nil
}
