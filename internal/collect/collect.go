// Package collect implements the DCDB Collect Agent: the data broker that
// receives sensor readings from Pushers over the MQTT-style transport,
// forwards them to the Storage Backend, maintains system-wide sensor
// caches, and embeds the Wintermute framework with visibility of the
// entire system's sensor space (paper §IV-A).
//
// Operators instantiated in a Collect Agent read from the local caches
// when possible and from the Storage Backend otherwise — the location
// "optimal for system or infrastructure-level analysis and feedback
// loops".
package collect

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/resultcache"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/transport"
	"github.com/dcdb/wintermute/internal/tsdb"
)

// Config parameterises a Collect Agent.
type Config struct {
	// ListenMQTT is the broker listen address (e.g. "127.0.0.1:0");
	// empty runs the agent without a network broker (in-process ingest
	// only).
	ListenMQTT string
	// CacheRetention sizes the system-wide sensor caches (default 180 s).
	CacheRetention time.Duration
	// StoreDir selects the persistent Storage Backend: when set, the
	// agent opens an embedded tsdb database in this directory (WAL +
	// compressed segments, crash-recovered on start) instead of the
	// bounded in-memory store.
	StoreDir string
	// StoreRetention is the time window the persistent backend keeps
	// (0 = forever). Only meaningful with StoreDir.
	StoreRetention time.Duration
	// StoreMax caps readings kept per sensor in the in-memory Storage
	// Backend (0 = unlimited). Only meaningful without StoreDir.
	StoreMax int
	// StoreWALSync fsyncs the tsdb write-ahead log on every group commit
	// (durability against OS crashes; the fsync is amortized across all
	// concurrently-ingesting connections).
	StoreWALSync bool
	// StoreWALGroupWindow makes a WAL group-commit leader linger this
	// long before persisting, trading per-batch latency for larger
	// commit groups (0: commit immediately).
	StoreWALGroupWindow time.Duration
	// IngestWorkers sizes the worker fan-in between the broker and the
	// storage path: delivered messages are queued per topic shard and
	// ingested by this many workers, so a slow WAL fsync never stalls a
	// connection's read loop, and concurrent batches coalesce into
	// shared group commits. 0 picks a default (min(4, GOMAXPROCS));
	// negative ingests synchronously on the delivering goroutine.
	IngestWorkers int
	// IngestQueueCap bounds each ingest worker's queue (default 256).
	// A full queue blocks the delivering connection — backpressure,
	// never a drop. The chaos harness shrinks this to 1 to force the
	// backpressure path under load.
	IngestQueueCap int
	// BrokerWriteDeadline bounds every broker frame write to a client
	// connection (default 10s): a subscriber that stops reading is torn
	// down instead of wedging the writer.
	BrokerWriteDeadline time.Duration
	// BrokerOutQueue bounds each broker connection's outbound frame
	// queue (default 1024). Publish acks block on a full queue;
	// subscriber forwards drop with a counter.
	BrokerOutQueue int
	// StoreFS, when set with StoreDir, replaces the storage backend's
	// filesystem (tsdb.Options.FS). Nil selects the real one; the chaos
	// harness injects a fault-injecting implementation here.
	StoreFS tsdb.FS
	// ResultCacheSize caps the serving tier's query result cache: the
	// number of memoized hot-window aggregates/downsample/range results
	// kept with write-through invalidation. 0 disables the cache.
	ResultCacheSize int
	// ResultCacheTTL bounds how stale a memoized result may be served
	// after new data landed in its window. 0 is strict: cached answers
	// are indistinguishable from uncached ones.
	ResultCacheTTL time.Duration
	// Threads sizes the Wintermute worker pool executing operator
	// computations (0: runtime.GOMAXPROCS).
	Threads int
	// Env is handed to Wintermute plugin configurators (job providers
	// attach here).
	Env core.Env
	// Metrics, when set, instruments every subsystem the agent wires
	// together (broker, ingest fan-in, tsdb, result cache, scheduler,
	// storage stats) into the given telemetry registry. The daemons pass
	// telemetry.Default; tests pass a private registry or nil.
	Metrics *telemetry.Registry
	// SelfMonitorEvery, when positive (and Metrics is set), republishes
	// the registry into the agent's own sensor pipeline under
	// /telemetry/# at this interval — the monitoring system monitoring
	// itself, queryable and cacheable like any sensor.
	SelfMonitorEvery time.Duration
}

// Agent is a running Collect Agent.
type Agent struct {
	Nav     *navigator.Navigator
	Caches  *cache.Set
	Store   store.Backend
	QE      *core.QueryEngine
	Manager *core.Manager
	Broker  *transport.Broker

	// DB is the persistent backend, nil when the agent runs in-memory.
	DB *tsdb.DB

	// Results is the serving tier's query result cache, nil when
	// disabled. Hand it to rest.Options so /query memoizes hot windows.
	Results *resultcache.Cache

	// SelfMon republishes the telemetry registry as /telemetry/# sensor
	// topics; nil unless Config.SelfMonitorEvery was set. Tests can call
	// its PublishOnce to force a pass.
	SelfMon *telemetry.SelfMonitor

	sink    *core.CacheSink
	metrics *agentMetrics
	// metricHandles collects the callback-metric registrations made on
	// behalf of subsystems without their own Close (storage stats,
	// result cache); released in Close.
	metricHandles []*telemetry.FuncHandle

	// dedup is the at-least-once-to-exactly-once gate: redelivered
	// batches (same client epoch, sequence at or below the topic's
	// high-water mark) are dropped before they reach the ingest path.
	dedup *dedup

	// Ingest fan-in between the broker and the sink: one bounded queue
	// per worker, messages sharded by topic so per-topic batch order is
	// preserved. batchPool recycles the copies the enqueue path must
	// make (the broker reuses its decode buffers).
	ingestQs    []chan ingestBatch
	ingestWG    sync.WaitGroup
	ingestClose sync.Once
	batchPool   sync.Pool
}

// ingestBatch is one queued topic batch; buf returns to the pool after
// the worker pushed it. enq stamps the enqueue time for the drain
// latency histogram (zero when telemetry is disabled).
type ingestBatch struct {
	topic sensor.Topic
	buf   *[]sensor.Reading
	enq   time.Time
}

// New creates a Collect Agent and, when configured, starts its broker.
func New(cfg Config) (*Agent, error) {
	if cfg.CacheRetention <= 0 {
		cfg.CacheRetention = 180 * time.Second
	}
	nav := navigator.New()
	caches := cache.NewSet()
	// The result cache exists before the backend opens so the janitor's
	// very first retention pass can already invalidate through it.
	rc := resultcache.New(cfg.ResultCacheSize, cfg.ResultCacheTTL)
	var (
		st store.Backend
		db *tsdb.DB
	)
	if cfg.StoreDir != "" {
		var err error
		db, err = tsdb.Open(cfg.StoreDir, tsdb.Options{
			Retention:      cfg.StoreRetention,
			WALSync:        cfg.StoreWALSync,
			WALGroupWindow: cfg.StoreWALGroupWindow,
			OnPrune:        func(int64, int) { rc.NotePrune() },
			Metrics:        cfg.Metrics,
			FS:             cfg.StoreFS,
		})
		if err != nil {
			return nil, fmt.Errorf("collect: opening storage backend: %w", err)
		}
		st = db
	} else {
		st = store.New(cfg.StoreMax)
	}
	qe := core.NewQueryEngine(nav, caches, st)
	sink := core.NewCacheSink(caches, nav, int(cfg.CacheRetention/time.Second), time.Second)
	sink.Store = st
	sink.Results = rc
	a := &Agent{
		Nav:     nav,
		Caches:  caches,
		Store:   st,
		DB:      db,
		QE:      qe,
		Results: rc,
		sink:    sink,
		dedup:   newDedup(),
	}
	// A recovered backend already knows its sensors: rebuild the tree so
	// pattern-based operator units bind immediately after a restart.
	if db != nil {
		for _, topic := range db.Topics() {
			_ = nav.AddSensor(topic)
		}
	}
	a.metrics = newAgentMetrics(cfg.Metrics, a)
	a.metricHandles = append(a.metricHandles,
		store.RegisterBackendMetrics(cfg.Metrics, st)...)
	a.metricHandles = append(a.metricHandles,
		rc.RegisterMetrics(cfg.Metrics)...)
	a.Manager = core.NewManager(qe, sink, cfg.Env)
	a.Manager.EnableTelemetry(cfg.Metrics)
	if cfg.Threads > 0 {
		a.Manager.SetThreads(cfg.Threads)
	}
	if cfg.SelfMonitorEvery > 0 && cfg.Metrics != nil {
		// The publish closure feeds the sink directly (not the broker):
		// telemetry readings take the same cache+store path as any
		// sensor, so /telemetry/# is queryable via GET /query and
		// aggregatable by operators.
		a.SelfMon = telemetry.NewSelfMonitor(cfg.Metrics, "/telemetry",
			cfg.SelfMonitorEvery, func(topic string, v float64, ts int64) {
				sink.Push(sensor.Topic(topic), sensor.Reading{Value: v, Time: ts})
			})
		a.SelfMon.Start()
	}
	if cfg.ListenMQTT != "" {
		b, err := transport.NewBrokerOpts(cfg.ListenMQTT, transport.BrokerOptions{
			WriteDeadline: cfg.BrokerWriteDeadline,
			OutQueue:      cfg.BrokerOutQueue,
			Metrics:       cfg.Metrics,
		})
		if err != nil {
			if a.SelfMon != nil {
				a.SelfMon.Close()
			}
			a.closeMetricHandles()
			a.Manager.Close()
			if db != nil {
				db.Close() // release the janitor and directory lock
			}
			return nil, fmt.Errorf("collect: starting broker: %w", err)
		}
		a.Broker = b
		if workers := ingestWorkerCount(cfg.IngestWorkers); workers > 0 {
			a.startIngestWorkers(workers, ingestQueueCap(cfg.IngestQueueCap))
			b.SubscribeLocal("#", func(m transport.Message) {
				// The broker owns m.Readings only for the duration of
				// the call; copy into a pooled batch and hand it to the
				// topic's worker. Per-topic order is preserved by the
				// shard mapping; a full queue blocks the delivering
				// connection (backpressure), never drops. Redelivered
				// batches are dropped here, before they cost a copy.
				if !a.admitBatch(m) {
					return
				}
				a.enqueueIngest(m.Topic, m.Readings)
			})
		} else {
			b.SubscribeLocal("#", func(m transport.Message) {
				// One delivered message becomes one batched sink push: the
				// topic's cache, store series and navigator registration are
				// each touched once per message, not once per reading.
				if !a.admitBatch(m) {
					return
				}
				a.IngestBatch(m.Topic, m.Readings)
			})
		}
	}
	return a, nil
}

// ingestWorkerCount resolves the IngestWorkers knob: 0 = min(4,
// GOMAXPROCS), negative = synchronous delivery (no fan-in).
func ingestWorkerCount(cfg int) int {
	if cfg < 0 {
		return 0
	}
	if cfg > 0 {
		return cfg
	}
	if n := runtime.GOMAXPROCS(0); n < 4 {
		return n
	}
	return 4
}

// ingestQueueCap resolves the IngestQueueCap knob (0 = 256).
func ingestQueueCap(cfg int) int {
	if cfg > 0 {
		return cfg
	}
	return 256
}

// startIngestWorkers launches the fan-in: one bounded queue of the
// given capacity and one goroutine per worker.
func (a *Agent) startIngestWorkers(n, cap int) {
	a.batchPool.New = func() any {
		rs := make([]sensor.Reading, 0, 64)
		return &rs
	}
	a.ingestQs = make([]chan ingestBatch, n)
	for i := range a.ingestQs {
		q := make(chan ingestBatch, cap)
		a.ingestQs[i] = q
		a.ingestWG.Add(1)
		go func() {
			defer a.ingestWG.Done()
			for m := range q {
				a.metrics.drainSec.ObserveSince(m.enq)
				a.sink.PushSeries(m.topic, *m.buf)
				a.metrics.batches.Inc()
				a.metrics.readings.Add(uint64(len(*m.buf)))
				a.metrics.batchSize.Observe(float64(len(*m.buf)))
				*m.buf = (*m.buf)[:0]
				a.batchPool.Put(m.buf)
			}
		}()
	}
}

// enqueueIngest copies one delivered batch into pooled storage and
// queues it on its topic's worker.
func (a *Agent) enqueueIngest(topic sensor.Topic, rs []sensor.Reading) {
	buf := a.batchPool.Get().(*[]sensor.Reading)
	*buf = append((*buf)[:0], rs...)
	// The shared FNV-1a topic hash pins a topic to one worker, so its
	// batches are always ingested in arrival order.
	//
	//lint:ignore poolescape ownership transfer by design: exactly one ingest worker receives buf and returns it to batchPool after PushSeries
	a.ingestQs[topic.Hash()%uint32(len(a.ingestQs))] <- ingestBatch{topic: topic, buf: buf, enq: telemetry.Clock()}
}

// admitBatch consults the dedup high-water marks for one delivered
// message, counting the duplicates it turns away. The broker still
// acknowledges a duplicate — the first delivery already reached the
// store, which is exactly what the ack promises.
func (a *Agent) admitBatch(m transport.Message) bool {
	if a.dedup.admit(m.Epoch, m.Topic, m.Seq) {
		return true
	}
	a.metrics.dupBatches.Inc()
	a.metrics.dupReadings.Add(uint64(len(m.Readings)))
	return false
}

// Addr returns the broker address, or "" when no broker is running.
func (a *Agent) Addr() string {
	if a.Broker == nil {
		return ""
	}
	return a.Broker.Addr()
}

// Sink returns the agent's reading sink (caches + store).
func (a *Agent) Sink() core.Sink { return a.sink }

// Ingest feeds one reading into the agent as if it had arrived over MQTT:
// it lands in the sensor tree, the cache and the Storage Backend.
func (a *Agent) Ingest(topic sensor.Topic, r sensor.Reading) {
	a.sink.Push(topic, r)
}

// IngestBatch feeds a series of readings for one topic into the agent,
// taking the cache and store locks once for the whole batch.
func (a *Agent) IngestBatch(topic sensor.Topic, rs []sensor.Reading) {
	a.sink.PushSeries(topic, rs)
}

// TickOnce synchronously runs one Wintermute computation round.
func (a *Agent) TickOnce(now time.Time) error {
	return a.Manager.TickAll(now)
}

// Start launches the Wintermute operator loops.
func (a *Agent) Start() { a.Manager.Start() }

// Close stops operators, shuts the Wintermute worker pool down, closes
// the broker, drains the ingest fan-in queues, and, for a persistent
// agent, flushes and closes the storage backend — in that order, so
// every batch the broker acknowledged reaches the backend before its
// final flush.
func (a *Agent) Close() error {
	// Self-monitoring stops first: its publishes go through the sink, so
	// it must not race the drain/close sequence below.
	if a.SelfMon != nil {
		a.SelfMon.Close()
	}
	a.Manager.Close()
	var err error
	if a.Broker != nil {
		err = a.Broker.Close()
	}
	// The broker is closed: no handler can enqueue anymore. Drain what
	// is queued so acknowledged deliveries land in the backend. Once-
	// guarded like every other component here, so a second Close is a
	// no-op instead of a close-of-closed-channel panic.
	a.ingestClose.Do(func() {
		for _, q := range a.ingestQs {
			close(q)
		}
		a.ingestWG.Wait()
	})
	// Callback metrics read agent state (queue depths, backend stats);
	// unregister them before the backend goes away.
	a.closeMetricHandles()
	if a.DB != nil {
		if derr := a.DB.Close(); err == nil {
			err = derr
		}
	}
	return err
}

// closeMetricHandles unregisters every callback metric the agent
// registered on behalf of its subsystems; idempotent.
func (a *Agent) closeMetricHandles() {
	for _, h := range a.metricHandles {
		h.Close()
	}
	a.metricHandles = nil
	a.metrics.closeMetrics()
}
