package collect

import (
	"github.com/dcdb/wintermute/internal/telemetry"
)

// agentMetrics instruments the broker-to-storage ingest fan-in. Always
// non-nil on an Agent; without a registry the metrics are unattached
// and the enqueue/drain hot paths stay unconditional.
type agentMetrics struct {
	batches     *telemetry.Counter   // batches drained by ingest workers
	readings    *telemetry.Counter   // readings carried by drained batches
	batchSize   *telemetry.Histogram // readings per drained batch
	drainSec    *telemetry.Histogram // enqueue-to-worker-pickup latency
	dupBatches  *telemetry.Counter   // redelivered batches dropped by dedup
	dupReadings *telemetry.Counter   // readings carried by dropped duplicates

	handles []*telemetry.FuncHandle
}

func newAgentMetrics(reg *telemetry.Registry, a *Agent) *agentMetrics {
	m := &agentMetrics{
		batches: reg.Counter("dcdb_ingest_batches_total",
			"Reading batches drained by the ingest workers."),
		readings: reg.Counter("dcdb_ingest_readings_total",
			"Readings ingested into the sink by the ingest workers."),
		batchSize: reg.Histogram("dcdb_ingest_batch_readings",
			"Readings per ingested batch.", telemetry.DefSizeBuckets),
		drainSec: reg.Histogram("dcdb_ingest_drain_seconds",
			"Latency from broker enqueue to ingest-worker pickup.",
			telemetry.DefDurationBuckets),
		dupBatches: reg.Counter("dcdb_ingest_dup_batches_total",
			"Redelivered batches dropped by the (epoch, topic) dedup high-water mark."),
		dupReadings: reg.Counter("dcdb_ingest_dup_readings_total",
			"Readings carried by dropped duplicate batches."),
	}
	if reg != nil && a != nil {
		m.handles = append(m.handles, reg.GaugeFunc("dcdb_ingest_dedup_epochs",
			"Client epochs tracked by the ingest dedup table.",
			func() float64 { return float64(a.dedup.size()) }))
		m.handles = append(m.handles, reg.GaugeFunc("dcdb_ingest_queue_depth",
			"Batches waiting in the ingest fan-in queues.",
			func() float64 {
				n := 0
				for _, q := range a.ingestQs {
					n += len(q)
				}
				return float64(n)
			}))
	}
	return m
}

func (m *agentMetrics) closeMetrics() {
	for _, h := range m.handles {
		h.Close()
	}
	m.handles = nil
}
