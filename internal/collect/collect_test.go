package collect

import (
	"fmt"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/transport"
)

func TestIngestWithoutBroker(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Addr() != "" {
		t.Error("no broker expected")
	}
	for i := 0; i < 10; i++ {
		a.Ingest("/r1/n1/power", sensor.Reading{Value: float64(100 + i), Time: int64(i) * int64(time.Second)})
	}
	// Data lands in store, cache and tree.
	if a.Store.Count("/r1/n1/power") != 10 {
		t.Fatalf("store count = %d", a.Store.Count("/r1/n1/power"))
	}
	if c, ok := a.Caches.Get("/r1/n1/power"); !ok || c.Len() != 10 {
		t.Fatal("cache missing or short")
	}
	if !a.Nav.HasSensor("/r1/n1/power") {
		t.Fatal("sensor not in tree")
	}
	// Query engine falls back to the store for old ranges.
	rs := a.QE.QueryAbsolute("/r1/n1/power", 0, 4*int64(time.Second), nil)
	if len(rs) != 5 {
		t.Fatalf("absolute query = %d readings", len(rs))
	}
}

func TestBrokerIngestion(t *testing.T) {
	a, err := New(Config{ListenMQTT: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c, err := transport.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	batch := []sensor.Reading{{Value: 1, Time: 1}, {Value: 2, Time: 2}}
	if err := c.Publish("/rx/n1/temp", batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.Store.Count("/rx/n1/temp") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("store count = %d, want 2", a.Store.Count("/rx/n1/temp"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStoreRetention(t *testing.T) {
	a, err := New(Config{StoreMax: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 10; i++ {
		a.Ingest("/s", sensor.Reading{Value: float64(i), Time: int64(i)})
	}
	if a.Store.Count("/s") != 3 {
		t.Fatalf("store retention failed: %d", a.Store.Count("/s"))
	}
}

func TestPersistentAgentCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	topics := make([]sensor.Topic, 8)
	for i := range topics {
		topics[i] = sensor.Topic(fmt.Sprintf("/r1/n%d/power", i))
	}

	a, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range topics {
		rs := make([]sensor.Reading, 100)
		for i := range rs {
			rs[i] = sensor.Reading{Value: float64(100 + i), Time: int64(i) * int64(time.Second)}
		}
		a.IngestBatch(tp, rs)
	}
	type answer struct {
		rng    []sensor.Reading
		latest sensor.Reading
	}
	want := map[sensor.Topic]answer{}
	for _, tp := range topics {
		r, _ := a.QE.Latest(tp)
		want[tp] = answer{
			rng:    a.Store.Range(tp, 0, 100*int64(time.Second), nil),
			latest: r,
		}
	}
	// Kill: no Agent.Close, no DB flush — the WAL is all that survives.
	// (Abandon stands in for process death: it drops the directory lock
	// without flushing anything.)
	a.Manager.Close()
	a.DB.Abandon()

	b, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, tp := range topics {
		got := b.Store.Range(tp, 0, 100*int64(time.Second), nil)
		if len(got) != len(want[tp].rng) {
			t.Fatalf("%s: recovered %d readings, want %d", tp, len(got), len(want[tp].rng))
		}
		for i := range got {
			if got[i] != want[tp].rng[i] {
				t.Fatalf("%s[%d] = %+v, want %+v", tp, i, got[i], want[tp].rng[i])
			}
		}
		// The restarted agent has cold caches: the Query Engine must fall
		// back to the recovered backend and answer identically.
		if r, ok := b.QE.Latest(tp); !ok || r != want[tp].latest {
			t.Fatalf("%s: QE.Latest = %+v, %v; want %+v", tp, r, ok, want[tp].latest)
		}
		// The sensor tree was rebuilt from the recovered topics.
		if !b.Nav.HasSensor(tp) {
			t.Fatalf("%s missing from recovered sensor tree", tp)
		}
	}
}

// TestIngestFanInPreservesPerTopicOrder drives many topics through the
// broker -> worker fan-in and checks every batch lands, with each
// topic's readings in arrival order (the shard mapping pins a topic to
// one worker).
func TestIngestFanInPreservesPerTopicOrder(t *testing.T) {
	a, err := New(Config{ListenMQTT: "127.0.0.1:0", IngestWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c, err := transport.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Every reading of every batch carries the SAME timestamp: the store
	// keeps equal-timestamp readings in arrival order (stable insert), so
	// the Value sequence read back IS the ingest order — any cross-batch
	// or cross-worker reorder of one topic shows up as a value out of
	// place, which monotonic timestamps could never detect (the store
	// sorts those).
	const topics = 16
	const batches = 25
	const batchLen = 4
	const stamp = int64(time.Second)
	for i := 0; i < batches; i++ {
		for n := 0; n < topics; n++ {
			topic := sensor.Topic(fmt.Sprintf("/fan/n%02d/power", n))
			batch := make([]sensor.Reading, batchLen)
			for j := range batch {
				batch[j] = sensor.Reading{Value: float64(i*batchLen + j), Time: stamp}
			}
			if err := c.Publish(topic, batch); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := 0
		for n := 0; n < topics; n++ {
			total += a.Store.Count(sensor.Topic(fmt.Sprintf("/fan/n%02d/power", n)))
		}
		if total == topics*batches*batchLen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d readings", total, topics*batches*batchLen)
		}
		time.Sleep(time.Millisecond)
	}
	for n := 0; n < topics; n++ {
		topic := sensor.Topic(fmt.Sprintf("/fan/n%02d/power", n))
		rs := a.Store.Range(topic, stamp, stamp, nil)
		if len(rs) != batches*batchLen {
			t.Fatalf("%s: %d readings", topic, len(rs))
		}
		for i := range rs {
			if rs[i].Value != float64(i) {
				t.Fatalf("%s: reading %d = %+v (arrival order broken)", topic, i, rs[i])
			}
		}
		if !a.Nav.HasSensor(topic) {
			t.Fatalf("%s missing from sensor tree", topic)
		}
	}
	// Close must stay idempotent with the fan-in queues in place.
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestIngestFanInDrainsOnClose publishes a burst and immediately closes
// the agent: Close must drain the worker queues into the backend before
// shutting it, so a persistent agent loses nothing it acknowledged.
func TestIngestFanInDrainsOnClose(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Config{ListenMQTT: "127.0.0.1:0", StoreDir: dir, IngestWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := transport.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 200
	for i := 0; i < msgs; i++ {
		if err := c.Publish("/drain/power", []sensor.Reading{{Value: float64(i), Time: int64(i) * int64(time.Second)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the broker to have routed everything (delivery into the
	// queues), then close immediately: queued-but-unprocessed batches
	// must still land.
	deadline := time.Now().Add(5 * time.Second)
	for a.Broker.Published() < msgs {
		if time.Now().After(deadline) {
			t.Fatalf("routed %d of %d", a.Broker.Published(), msgs)
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	a2, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if got := a2.Store.Count("/drain/power"); got != msgs {
		t.Fatalf("recovered %d readings, want %d", got, msgs)
	}
}

// TestIngestQueueCapBackpressure: with the tiniest possible ingest queue
// (cap 1), a burst far larger than the queue must still land completely —
// a full queue blocks the publisher-side handler (backpressure), it never
// drops. This is the configuration the chaos harness uses to keep the
// pipeline permanently saturated.
func TestIngestQueueCapBackpressure(t *testing.T) {
	a, err := New(Config{ListenMQTT: "127.0.0.1:0", IngestWorkers: 2, IngestQueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c, err := transport.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const topics = 8
	const batches = 50
	for i := 0; i < batches; i++ {
		for n := 0; n < topics; n++ {
			topic := sensor.Topic(fmt.Sprintf("/bp/n%02d/power", n))
			if err := c.Publish(topic, []sensor.Reading{{Value: float64(i), Time: int64(i + 1)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		total := 0
		for n := 0; n < topics; n++ {
			total += a.Store.Count(sensor.Topic(fmt.Sprintf("/bp/n%02d/power", n)))
		}
		if total == topics*batches {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d readings through cap-1 queues", total, topics*batches)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIngestQueueCapDefault(t *testing.T) {
	if got := ingestQueueCap(0); got != 256 {
		t.Fatalf("ingestQueueCap(0) = %d, want 256", got)
	}
	if got := ingestQueueCap(-5); got != 256 {
		t.Fatalf("ingestQueueCap(-5) = %d, want 256", got)
	}
	if got := ingestQueueCap(3); got != 3 {
		t.Fatalf("ingestQueueCap(3) = %d", got)
	}
}
