package collect

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/transport"
)

func TestIngestWithoutBroker(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Addr() != "" {
		t.Error("no broker expected")
	}
	for i := 0; i < 10; i++ {
		a.Ingest("/r1/n1/power", sensor.Reading{Value: float64(100 + i), Time: int64(i) * int64(time.Second)})
	}
	// Data lands in store, cache and tree.
	if a.Store.Count("/r1/n1/power") != 10 {
		t.Fatalf("store count = %d", a.Store.Count("/r1/n1/power"))
	}
	if c, ok := a.Caches.Get("/r1/n1/power"); !ok || c.Len() != 10 {
		t.Fatal("cache missing or short")
	}
	if !a.Nav.HasSensor("/r1/n1/power") {
		t.Fatal("sensor not in tree")
	}
	// Query engine falls back to the store for old ranges.
	rs := a.QE.QueryAbsolute("/r1/n1/power", 0, 4*int64(time.Second), nil)
	if len(rs) != 5 {
		t.Fatalf("absolute query = %d readings", len(rs))
	}
}

func TestBrokerIngestion(t *testing.T) {
	a, err := New(Config{ListenMQTT: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c, err := transport.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	batch := []sensor.Reading{{Value: 1, Time: 1}, {Value: 2, Time: 2}}
	if err := c.Publish("/rx/n1/temp", batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.Store.Count("/rx/n1/temp") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("store count = %d, want 2", a.Store.Count("/rx/n1/temp"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStoreRetention(t *testing.T) {
	a, err := New(Config{StoreRetention: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 10; i++ {
		a.Ingest("/s", sensor.Reading{Value: float64(i), Time: int64(i)})
	}
	if a.Store.Count("/s") != 3 {
		t.Fatalf("store retention failed: %d", a.Store.Count("/s"))
	}
}
