// Package stats provides the streaming and batch statistics shared by the
// Wintermute operator plugins: Welford accumulators, ordinary least
// squares, histograms, Gaussian densities and the digamma special function
// needed by the variational Bayesian mixture model.
package stats

import "math"

// Welford accumulates count, mean and variance of a stream in a single
// pass, numerically stably, together with the extremes. The zero value is
// ready to use.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds a value into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of values seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 for fewer than 2 values).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the unbiased sample variance (0 for fewer than 2).
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the minimum seen (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the maximum seen (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Var()
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Slope fits y = a + b·x by ordinary least squares and returns b. It
// returns 0 for degenerate inputs (fewer than two points or constant x).
func Slope(x, y []float64) float64 {
	n := len(x)
	if n < 2 || n != len(y) {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		sxy += dx * (y[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0
	}
	return sxy / sxx
}

// Pearson returns the linear correlation coefficient of x and y, or 0 for
// degenerate inputs.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n < 2 || n != len(y) {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	den := math.Sqrt(sxx * syy)
	if den == 0 {
		return 0
	}
	return sxy / den
}

// GaussianPDF returns the density of N(mu, sigma²) at x. A zero sigma
// yields 0 (degenerate distribution treated as measure-zero support).
func GaussianPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// LogGaussianPDF returns the log-density of N(mu, sigma²) at x.
func LogGaussianPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// Histogram is a fixed-range, equal-width histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram over [lo, hi) with the given number of
// bins. It panics on invalid parameters, which indicate a programming bug.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add folds x into the histogram; values outside the range are clamped to
// the edge bins so totals remain meaningful.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of values added.
func (h *Histogram) Total() int { return h.total }

// PDF returns the normalised density estimate per bin (sums to 1 over
// bins); empty histograms return all zeros.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Digamma returns the digamma function ψ(x) = d/dx ln Γ(x) for x > 0,
// computed by argument-shifting into the asymptotic regime and applying
// the standard series. Accuracy is ~1e-12, far beyond what variational
// inference requires.
func Digamma(x float64) float64 {
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN() // poles at non-positive integers
		}
		// Reflection: ψ(1-x) - ψ(x) = π cot(πx).
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	var r float64
	for x < 6 {
		r -= 1 / x
		x++
	}
	f := 1 / (x * x)
	// Asymptotic expansion with Bernoulli-number coefficients.
	return r + math.Log(x) - 0.5/x -
		f*(1.0/12-f*(1.0/120-f*(1.0/252-f*(1.0/240-f*(1.0/132)))))
}

// RelativeError returns |pred-actual| / |actual|, or |pred-actual| when
// actual is zero; it is the error metric of the paper's Figure 6.
func RelativeError(pred, actual float64) float64 {
	d := math.Abs(pred - actual)
	if actual == 0 {
		return d
	}
	return d / math.Abs(actual)
}
