package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordAgainstBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Fatalf("N/Mean = %d/%v", w.N(), w.Mean())
	}
	if !almostEq(w.Var(), 4, 1e-12) {
		t.Fatalf("Var = %v, want 4", w.Var())
	}
	if !almostEq(w.SampleVar(), 32.0/7, 1e-12) {
		t.Fatalf("SampleVar = %v", w.SampleVar())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if !almostEq(w.Std(), 2, 1e-12) {
		t.Fatalf("Std = %v", w.Std())
	}
}

func TestWelfordEmptyAndReset(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero value should be neutral")
	}
	w.Add(5)
	if w.Var() != 0 {
		t.Fatal("single value variance should be 0")
	}
	w.Reset()
	if w.N() != 0 {
		t.Fatal("Reset failed")
	}
}

// TestWelfordMatchesNaive: streaming statistics must agree with the
// two-pass formulas on arbitrary data.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		for _, x := range clean {
			w.Add(x)
		}
		m := Mean(clean)
		var v float64
		for _, x := range clean {
			v += (x - m) * (x - m)
		}
		v /= float64(len(clean))
		scale := 1 + math.Abs(v)
		return almostEq(w.Mean(), m, 1e-9*(1+math.Abs(m))) && almostEq(w.Var(), v, 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSlope(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // slope 2
	if !almostEq(Slope(x, y), 2, 1e-12) {
		t.Fatalf("Slope = %v", Slope(x, y))
	}
	if Slope([]float64{1}, []float64{1}) != 0 {
		t.Error("degenerate input should give 0")
	}
	if Slope([]float64{2, 2, 2}, []float64{1, 2, 3}) != 0 {
		t.Error("constant x should give 0")
	}
	if Slope(x, y[:2]) != 0 {
		t.Error("length mismatch should give 0")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if !almostEq(Pearson(x, y), 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", Pearson(x, y))
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !almostEq(Pearson(x, neg), -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", Pearson(x, neg))
	}
	if Pearson(x, []float64{5, 5, 5, 5, 5}) != 0 {
		t.Error("constant y should give 0")
	}
}

func TestGaussianPDF(t *testing.T) {
	// Standard normal at 0: 1/sqrt(2π).
	want := 1 / math.Sqrt(2*math.Pi)
	if !almostEq(GaussianPDF(0, 0, 1), want, 1e-12) {
		t.Fatalf("pdf(0) = %v", GaussianPDF(0, 0, 1))
	}
	if GaussianPDF(1, 0, 0) != 0 {
		t.Error("zero sigma should give 0")
	}
	// Log form must agree with the log of the direct form.
	p := GaussianPDF(1.3, 0.2, 2.5)
	lp := LogGaussianPDF(1.3, 0.2, 2.5)
	if !almostEq(math.Log(p), lp, 1e-10) {
		t.Fatalf("log pdf mismatch: %v vs %v", math.Log(p), lp)
	}
}

func TestGaussianSymmetryProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 30 {
			return true
		}
		return almostEq(GaussianPDF(x, 0, 1), GaussianPDF(-x, 0, 1), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.9} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[4] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	// Clamping.
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 3 || h.Counts[4] != 3 {
		t.Fatalf("clamped Counts = %v", h.Counts)
	}
	pdf := h.PDF()
	var sum float64
	for _, p := range pdf {
		sum += p
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Fatalf("PDF sums to %v", sum)
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	pdf := h.PDF()
	for _, p := range pdf {
		if p != 0 {
			t.Fatal("empty PDF should be zeros")
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(1, 0, 4)
}

func TestDigammaKnownValues(t *testing.T) {
	const gamma = 0.5772156649015329 // Euler–Mascheroni
	cases := []struct{ x, want float64 }{
		{1, -gamma},
		{0.5, -gamma - 2*math.Ln2},
		{2, 1 - gamma},
		{10, 2.251752589066721},
	}
	for _, c := range cases {
		if got := Digamma(c.x); !almostEq(got, c.want, 1e-10) {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !math.IsNaN(Digamma(0)) || !math.IsNaN(Digamma(-3)) {
		t.Error("poles should return NaN")
	}
}

// TestDigammaRecurrence: ψ(x+1) = ψ(x) + 1/x.
func TestDigammaRecurrence(t *testing.T) {
	f := func(seed uint16) bool {
		x := 0.1 + float64(seed%1000)/50
		return almostEq(Digamma(x+1), Digamma(x)+1/x, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelativeError(t *testing.T) {
	if !almostEq(RelativeError(110, 100), 0.1, 1e-12) {
		t.Error("10% error expected")
	}
	if RelativeError(5, 0) != 5 {
		t.Error("zero actual should return absolute difference")
	}
	if RelativeError(100, 100) != 0 {
		t.Error("exact prediction should give 0")
	}
}

func TestBatchHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if !almostEq(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Error("Std wrong")
	}
}
