// Package bgmm implements variational Bayesian Gaussian mixture models
// with full covariance matrices, the clustering algorithm of the paper's
// case study 3 (§VI-D).
//
// Unlike an ordinary Gaussian mixture fitted by EM, the Bayesian variant
// places a Dirichlet prior over the mixing weights and Normal-Wishart
// priors over the component parameters; variational inference then shrinks
// the weights of unneeded components towards zero, so the effective number
// of clusters is determined from the data (Roberts et al. [45] — no manual
// tuning in a continuous online setting). Points whose density is below a
// threshold under every fitted component are classified as outliers, the
// rule used in the paper with threshold 0.001.
//
// The implementation follows the standard coordinate-ascent updates
// (Bishop, PRML §10.2), initialised with k-means++.
package bgmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/dcdb/wintermute/internal/ml/linalg"
	"github.com/dcdb/wintermute/internal/ml/stats"
)

// ErrNoData reports a Fit call with no usable samples.
var ErrNoData = errors.New("bgmm: no training data")

// Params configures the variational mixture. Zero fields take defaults.
type Params struct {
	// MaxComponents is the truncation level K of the mixture (default 8);
	// the effective number of clusters found is at most this.
	MaxComponents int
	// MaxIter bounds the variational iterations (default 200).
	MaxIter int
	// Tol stops iteration when the largest responsibility change falls
	// below it (default 1e-4).
	Tol float64
	// Alpha0 is the Dirichlet concentration per component; small values
	// favour few clusters (default 1/MaxComponents).
	Alpha0 float64
	// WeightThreshold is the posterior weight below which a component is
	// considered pruned (default 0.02).
	WeightThreshold float64
	// Seed makes the k-means++ initialisation deterministic.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.MaxComponents <= 0 {
		p.MaxComponents = 8
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 200
	}
	if p.Tol <= 0 {
		p.Tol = 1e-4
	}
	if p.Alpha0 <= 0 {
		p.Alpha0 = 1 / float64(p.MaxComponents)
	}
	if p.WeightThreshold <= 0 {
		p.WeightThreshold = 0.02
	}
	return p
}

// component holds the variational posterior of one mixture component.
type component struct {
	alpha, beta, nu float64
	m               []float64
	winv            *linalg.Matrix // inverse of the Wishart scale matrix
	cholWinv        *linalg.Matrix
	// Derived per-iteration quantities.
	elnLambda float64
	elnPi     float64
	// Predictive (plug-in) density parameters, built after convergence.
	cov     *linalg.Matrix
	cholCov *linalg.Matrix
	logDet  float64
}

// Model is a fitted Bayesian Gaussian mixture.
type Model struct {
	D       int
	K       int       // truncation level
	Weights []float64 // posterior mixing weights, length K
	comps   []*component
	active  []int // indices of non-pruned components
	iters   int
}

// NumActive returns the number of effective (non-pruned) components — the
// cluster count the model inferred from the data.
func (m *Model) NumActive() int { return len(m.active) }

// Iterations returns the number of variational iterations performed.
func (m *Model) Iterations() int { return m.iters }

// ActiveWeights returns the posterior weights of the active components, in
// label order.
func (m *Model) ActiveWeights() []float64 {
	out := make([]float64, len(m.active))
	for i, k := range m.active {
		out[i] = m.Weights[k]
	}
	return out
}

// Mean returns the posterior mean of active component (label) c.
func (m *Model) Mean(c int) []float64 {
	out := make([]float64, m.D)
	copy(out, m.comps[m.active[c]].m)
	return out
}

// Fit runs variational inference on the samples x (one point per row).
// Rows containing NaN or Inf are rejected with an error, since silent
// omission would corrupt cluster statistics.
func Fit(x [][]float64, p Params) (*Model, error) {
	p = p.withDefaults()
	if len(x) == 0 {
		return nil, ErrNoData
	}
	d := len(x[0])
	if d == 0 {
		return nil, ErrNoData
	}
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("bgmm: ragged row %d", i)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("bgmm: non-finite value in row %d", i)
			}
		}
	}
	n := len(x)
	k := p.MaxComponents
	if k > n {
		k = n
	}

	// Empirical moments define the priors: mean prior at the data mean,
	// Wishart scale matched to the data covariance (plus ridge for
	// degenerate directions), nu0 = D+2 keeps the prior proper but weak.
	mean0 := make([]float64, d)
	for _, row := range x {
		linalg.AXPY(mean0, row, 1)
	}
	for i := range mean0 {
		mean0[i] /= float64(n)
	}
	cov0 := linalg.NewMatrix(d, d)
	diff := make([]float64, d)
	for _, row := range x {
		for i := range diff {
			diff[i] = row[i] - mean0[i]
		}
		if err := cov0.AddOuter(diff, 1); err != nil {
			return nil, err
		}
	}
	cov0.Scale(1 / float64(n))
	ridge := 0.0
	for i := 0; i < d; i++ {
		ridge += cov0.At(i, i)
	}
	ridge = ridge/float64(d)*1e-6 + 1e-10
	for i := 0; i < d; i++ {
		cov0.Set(i, i, cov0.At(i, i)+ridge)
	}

	const beta0 = 1.0
	nu0 := float64(d) + 2
	winv0 := cov0.Clone()
	winv0.Scale(nu0) // so the prior E[Lambda] = nu0*W0 = inv(cov0)

	model := &Model{D: d, K: k, Weights: make([]float64, k)}
	model.comps = make([]*component, k)
	for j := range model.comps {
		model.comps[j] = &component{
			alpha: p.Alpha0, beta: beta0, nu: nu0,
			m:    append([]float64(nil), mean0...),
			winv: winv0.Clone(),
		}
	}

	// Responsibilities initialised from k-means++ hard assignments,
	// softened so every component keeps mass.
	resp := initResponsibilities(x, k, p.Seed)

	nk := make([]float64, k)
	xbar := make([][]float64, k)
	sk := make([]*linalg.Matrix, k)
	for j := 0; j < k; j++ {
		xbar[j] = make([]float64, d)
		sk[j] = linalg.NewMatrix(d, d)
	}

	prevResp := make([][]float64, n)
	for i := range prevResp {
		prevResp[i] = make([]float64, k)
	}

	for iter := 0; iter < p.MaxIter; iter++ {
		model.iters = iter + 1
		// M-step: soft-count statistics.
		for j := 0; j < k; j++ {
			nk[j] = 0
			for i := range xbar[j] {
				xbar[j][i] = 0
			}
			for i := range sk[j].Data {
				sk[j].Data[i] = 0
			}
		}
		for i, row := range x {
			for j := 0; j < k; j++ {
				r := resp[i][j]
				nk[j] += r
				linalg.AXPY(xbar[j], row, r)
			}
		}
		for j := 0; j < k; j++ {
			if nk[j] > 1e-10 {
				for i := range xbar[j] {
					xbar[j][i] /= nk[j]
				}
			}
		}
		for i, row := range x {
			for j := 0; j < k; j++ {
				r := resp[i][j]
				if r < 1e-12 {
					continue
				}
				for t := range diff {
					diff[t] = row[t] - xbar[j][t]
				}
				if err := sk[j].AddOuter(diff, r); err != nil {
					return nil, err
				}
			}
		}
		// Posterior parameter updates.
		for j := 0; j < k; j++ {
			c := model.comps[j]
			c.alpha = p.Alpha0 + nk[j]
			c.beta = beta0 + nk[j]
			c.nu = nu0 + nk[j]
			for t := 0; t < d; t++ {
				c.m[t] = (beta0*mean0[t] + nk[j]*xbar[j][t]) / c.beta
			}
			c.winv = winv0.Clone()
			if err := c.winv.AddScaled(sk[j], 1); err != nil {
				return nil, err
			}
			for t := range diff {
				diff[t] = xbar[j][t] - mean0[t]
			}
			shrink := beta0 * nk[j] / (beta0 + nk[j])
			if err := c.winv.AddOuter(diff, shrink); err != nil {
				return nil, err
			}
			c.winv.Symmetrize()
			chol, err := choleskyWithJitter(c.winv)
			if err != nil {
				return nil, err
			}
			c.cholWinv = chol
		}
		// Expected log weights and log precisions.
		var alphaSum float64
		for j := 0; j < k; j++ {
			alphaSum += model.comps[j].alpha
		}
		psiSum := stats.Digamma(alphaSum)
		for j := 0; j < k; j++ {
			c := model.comps[j]
			c.elnPi = stats.Digamma(c.alpha) - psiSum
			s := float64(d) * math.Ln2
			for i := 1; i <= d; i++ {
				s += stats.Digamma((c.nu + 1 - float64(i)) / 2)
			}
			c.elnLambda = s - linalg.LogDetChol(c.cholWinv)
		}
		// E-step: update responsibilities, track max change.
		maxDelta := 0.0
		logr := make([]float64, k)
		for i, row := range x {
			for j := 0; j < k; j++ {
				c := model.comps[j]
				maha, err := linalg.MahalanobisSq(c.cholWinv, row, c.m)
				if err != nil {
					return nil, err
				}
				logr[j] = c.elnPi + 0.5*c.elnLambda -
					float64(d)/(2*c.beta) - 0.5*c.nu*maha -
					0.5*float64(d)*math.Log(2*math.Pi)
			}
			logSumExpNormalize(logr, resp[i])
			for j := 0; j < k; j++ {
				if delta := math.Abs(resp[i][j] - prevResp[i][j]); delta > maxDelta {
					maxDelta = delta
				}
				prevResp[i][j] = resp[i][j]
			}
		}
		if iter > 0 && maxDelta < p.Tol {
			break
		}
	}

	// Posterior weights and active set.
	var alphaSum float64
	for j := 0; j < k; j++ {
		alphaSum += model.comps[j].alpha
	}
	for j := 0; j < k; j++ {
		model.Weights[j] = model.comps[j].alpha / alphaSum
	}
	for j := 0; j < k; j++ {
		if model.Weights[j] >= p.WeightThreshold {
			model.active = append(model.active, j)
		}
	}
	if len(model.active) == 0 {
		best := 0
		for j := 1; j < k; j++ {
			if model.Weights[j] > model.Weights[best] {
				best = j
			}
		}
		model.active = []int{best}
	}
	// Plug-in predictive covariances: the posterior expected covariance
	// E[Sigma] = Winv / (nu - D - 1) of the inverse-Wishart marginal.
	for _, j := range model.active {
		c := model.comps[j]
		den := c.nu - float64(d) - 1
		if den < 1 {
			den = c.nu
		}
		c.cov = c.winv.Clone()
		c.cov.Scale(1 / den)
		chol, err := choleskyWithJitter(c.cov)
		if err != nil {
			return nil, err
		}
		c.cholCov = chol
		c.logDet = linalg.LogDetChol(chol)
	}
	return model, nil
}

// choleskyWithJitter factors a, progressively inflating the diagonal when
// accumulated rounding pushes it marginally off the SPD cone.
func choleskyWithJitter(a *linalg.Matrix) (*linalg.Matrix, error) {
	l, err := linalg.Cholesky(a)
	if err == nil {
		return l, nil
	}
	jitter := 1e-10
	for try := 0; try < 8; try++ {
		b := a.Clone()
		for i := 0; i < b.Rows; i++ {
			b.Set(i, i, b.At(i, i)*(1+jitter)+jitter)
		}
		if l, err = linalg.Cholesky(b); err == nil {
			return l, nil
		}
		jitter *= 100
	}
	return nil, err
}

// logSumExpNormalize converts log-weights into normalised probabilities.
func logSumExpNormalize(logw, out []float64) {
	maxw := math.Inf(-1)
	for _, v := range logw {
		if v > maxw {
			maxw = v
		}
	}
	var sum float64
	for j, v := range logw {
		e := math.Exp(v - maxw)
		out[j] = e
		sum += e
	}
	for j := range out {
		out[j] /= sum
	}
}

// Assign returns the label (index into the active components) of the
// component with the highest responsibility-like score for x.
func (m *Model) Assign(x []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for i, j := range m.active {
		c := m.comps[j]
		maha, err := linalg.MahalanobisSq(c.cholWinv, x, c.m)
		if err != nil {
			return 0
		}
		score := c.elnPi + 0.5*c.elnLambda - 0.5*c.nu*maha
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	return best
}

// ComponentDensity returns the plug-in Gaussian density of active
// component (label) c at x.
func (m *Model) ComponentDensity(c int, x []float64) float64 {
	comp := m.comps[m.active[c]]
	maha, err := linalg.MahalanobisSq(comp.cholCov, x, comp.m)
	if err != nil {
		return 0
	}
	logp := -0.5*maha - 0.5*comp.logDet - 0.5*float64(m.D)*math.Log(2*math.Pi)
	return math.Exp(logp)
}

// MaxDensity returns the largest per-component density of x across active
// components — the statistic thresholded by the paper's outlier rule.
func (m *Model) MaxDensity(x []float64) float64 {
	best := 0.0
	for c := range m.active {
		if p := m.ComponentDensity(c, x); p > best {
			best = p
		}
	}
	return best
}

// IsOutlier implements the paper's rule: a point is an outlier when its
// probability is below threshold in the PDFs of all fitted components.
func (m *Model) IsOutlier(x []float64, threshold float64) bool {
	return m.MaxDensity(x) < threshold
}

// initResponsibilities seeds soft assignments from k-means++ centres
// followed by a few Lloyd iterations.
func initResponsibilities(x [][]float64, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	n, d := len(x), len(x[0])
	centers := kmeansPP(x, k, rng)
	assign := make([]int, n)
	for iter := 0; iter < 10; iter++ {
		changed := false
		for i, row := range x {
			best, bestD := 0, math.Inf(1)
			for j := range centers {
				dd := sqDist(row, centers[j])
				if dd < bestD {
					bestD = dd
					best = j
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		for j := range centers {
			for t := 0; t < d; t++ {
				centers[j][t] = 0
			}
		}
		for i, row := range x {
			j := assign[i]
			counts[j]++
			linalg.AXPY(centers[j], row, 1)
		}
		for j := range centers {
			if counts[j] > 0 {
				for t := 0; t < d; t++ {
					centers[j][t] /= float64(counts[j])
				}
			} else {
				copy(centers[j], x[rng.Intn(n)])
			}
		}
	}
	resp := make([][]float64, n)
	const soft = 0.9
	for i := range resp {
		resp[i] = make([]float64, k)
		rest := (1 - soft) / float64(k)
		for j := range resp[i] {
			resp[i][j] = rest
		}
		resp[i][assign[i]] += soft - rest*float64(0)
		// Renormalise exactly.
		var s float64
		for _, v := range resp[i] {
			s += v
		}
		for j := range resp[i] {
			resp[i][j] /= s
		}
	}
	return resp
}

// kmeansPP picks k initial centers with the k-means++ seeding rule.
func kmeansPP(x [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(x)
	centers := make([][]float64, 0, k)
	first := x[rng.Intn(n)]
	centers = append(centers, append([]float64(nil), first...))
	dists := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, row := range x {
			best := math.Inf(1)
			for _, c := range centers {
				if dd := sqDist(row, c); dd < best {
					best = dd
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with existing centers; duplicate one.
			centers = append(centers, append([]float64(nil), x[rng.Intn(n)]...))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, dd := range dists {
			acc += dd
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), x[pick]...))
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Standardize z-scores each column of x and returns the transformed copy
// together with the per-column means and standard deviations (std 1 is
// substituted for constant columns). The clustering plugin standardises
// its inputs so the outlier density threshold is scale-free.
func Standardize(x [][]float64) (z [][]float64, mean, std []float64) {
	if len(x) == 0 {
		return nil, nil, nil
	}
	d := len(x[0])
	mean = make([]float64, d)
	std = make([]float64, d)
	ws := make([]stats.Welford, d)
	for _, row := range x {
		for j, v := range row {
			ws[j].Add(v)
		}
	}
	for j := range ws {
		mean[j] = ws[j].Mean()
		std[j] = ws[j].Std()
		if std[j] == 0 {
			std[j] = 1
		}
	}
	z = make([][]float64, len(x))
	for i, row := range x {
		z[i] = make([]float64, d)
		for j, v := range row {
			z[i][j] = (v - mean[j]) / std[j]
		}
	}
	return z, mean, std
}
