package bgmm

import (
	"math"
	"math/rand"
	"testing"
)

// blob samples n points from an axis-aligned Gaussian around center.
func blob(rng *rand.Rand, n int, center []float64, sigma float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, len(center))
		for j, c := range center {
			p[j] = c + rng.NormFloat64()*sigma
		}
		out[i] = p
	}
	return out
}

// threeBlobs builds a well-separated three-cluster 2D dataset.
func threeBlobs(seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var truth []int
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for c, ctr := range centers {
		b := blob(rng, 80, ctr, 0.7)
		x = append(x, b...)
		for range b {
			truth = append(truth, c)
		}
	}
	return x, truth
}

func TestFitFindsThreeClusters(t *testing.T) {
	x, truth := threeBlobs(1)
	m, err := Fit(x, Params{MaxComponents: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumActive(); got != 3 {
		t.Fatalf("NumActive = %d, want 3 (weights %v)", got, m.Weights)
	}
	// Labels must be consistent within each true cluster.
	for c := 0; c < 3; c++ {
		var labels []int
		for i, row := range x {
			if truth[i] == c {
				labels = append(labels, m.Assign(row))
			}
		}
		for _, l := range labels[1:] {
			if l != labels[0] {
				t.Fatalf("cluster %d split across labels %v", c, labels)
			}
		}
	}
	// Different true clusters map to different labels.
	l0 := m.Assign(x[0])
	l1 := m.Assign(x[80])
	l2 := m.Assign(x[160])
	if l0 == l1 || l1 == l2 || l0 == l2 {
		t.Fatalf("labels not distinct: %d %d %d", l0, l1, l2)
	}
}

func TestSingleClusterPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := blob(rng, 200, []float64{5, 5, 5}, 1)
	m, err := Fit(x, Params{MaxComponents: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumActive(); got != 1 {
		t.Fatalf("NumActive = %d, want 1 (weights %v)", got, m.Weights)
	}
	mean := m.Mean(0)
	for _, v := range mean {
		if math.Abs(v-5) > 0.3 {
			t.Fatalf("posterior mean = %v, want ~[5 5 5]", mean)
		}
	}
}

func TestOutlierDetection(t *testing.T) {
	x, _ := threeBlobs(5)
	m, err := Fit(x, Params{MaxComponents: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A central point of a cluster is not an outlier.
	if m.IsOutlier([]float64{0, 0}, 1e-3) {
		t.Error("cluster center flagged as outlier")
	}
	// A far point is an outlier under every component.
	if !m.IsOutlier([]float64{50, 50}, 1e-3) {
		t.Error("distant point not flagged as outlier")
	}
	if m.MaxDensity([]float64{0, 0}) <= m.MaxDensity([]float64{50, 50}) {
		t.Error("density ordering wrong")
	}
}

func TestWeightsSumToOne(t *testing.T) {
	x, _ := threeBlobs(7)
	m, err := Fit(x, Params{MaxComponents: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range m.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	aw := m.ActiveWeights()
	if len(aw) != m.NumActive() {
		t.Fatal("ActiveWeights length mismatch")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	x, _ := threeBlobs(11)
	a, err := Fit(x, Params{MaxComponents: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(x, Params{MaxComponents: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumActive() != b.NumActive() {
		t.Fatal("same seed, different active count")
	}
	for i, row := range x {
		if a.Assign(row) != b.Assign(row) {
			t.Fatalf("same seed, different label at %d", i)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Params{}); err != ErrNoData {
		t.Errorf("nil data err = %v", err)
	}
	if _, err := Fit([][]float64{{}}, Params{}); err != ErrNoData {
		t.Errorf("empty row err = %v", err)
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, Params{}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := Fit([][]float64{{1, math.NaN()}}, Params{}); err == nil {
		t.Error("NaN should fail")
	}
	if _, err := Fit([][]float64{{1, math.Inf(1)}}, Params{}); err == nil {
		t.Error("Inf should fail")
	}
}

func TestFewerPointsThanComponents(t *testing.T) {
	x := [][]float64{{0, 0}, {10, 10}}
	m, err := Fit(x, Params{MaxComponents: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 2 {
		t.Fatalf("K = %d, want clamped to 2", m.K)
	}
}

func TestDegenerateConstantData(t *testing.T) {
	x := make([][]float64, 30)
	for i := range x {
		x[i] = []float64{4, 4}
	}
	m, err := Fit(x, Params{MaxComponents: 4, Seed: 1})
	if err != nil {
		t.Fatalf("constant data should fit via ridge: %v", err)
	}
	if m.NumActive() < 1 {
		t.Fatal("at least one active component required")
	}
}

func TestStandardize(t *testing.T) {
	x := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	z, mean, std := Standardize(x)
	if mean[0] != 2 || mean[1] != 200 {
		t.Fatalf("mean = %v", mean)
	}
	// Columns now have mean 0 and unit variance.
	for j := 0; j < 2; j++ {
		var s, ss float64
		for i := range z {
			s += z[i][j]
			ss += z[i][j] * z[i][j]
		}
		if math.Abs(s) > 1e-9 {
			t.Errorf("column %d mean = %v", j, s/3)
		}
		if math.Abs(ss/3-1) > 1e-9 {
			t.Errorf("column %d var = %v", j, ss/3)
		}
	}
	if std[0] <= 0 || std[1] <= 0 {
		t.Error("std must be positive")
	}
	// Constant column gets std 1 instead of 0.
	_, _, std2 := Standardize([][]float64{{5, 1}, {5, 2}})
	if std2[0] != 1 {
		t.Errorf("constant column std = %v, want 1", std2[0])
	}
	if z, _, _ := Standardize(nil); z != nil {
		t.Error("empty input should return nil")
	}
}

func TestCorrelatedClusters(t *testing.T) {
	// Full-covariance components must capture elongated clusters: points
	// along a line y = x plus a separate blob.
	rng := rand.New(rand.NewSource(21))
	var x [][]float64
	for i := 0; i < 150; i++ {
		v := rng.Float64() * 10
		x = append(x, []float64{v + rng.NormFloat64()*0.2, v + rng.NormFloat64()*0.2})
	}
	x = append(x, blob(rng, 100, []float64{20, -5}, 0.5)...)
	m, err := Fit(x, Params{MaxComponents: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumActive() < 2 {
		t.Fatalf("NumActive = %d, want >= 2", m.NumActive())
	}
	// The line population and the blob must not share a label.
	if m.Assign(x[0]) == m.Assign(x[200]) {
		t.Error("line and blob assigned the same cluster")
	}
}

func TestIterationsReported(t *testing.T) {
	x, _ := threeBlobs(13)
	m, err := Fit(x, Params{MaxComponents: 4, MaxIter: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations() != 3 {
		t.Fatalf("Iterations = %d, want capped at 3", m.Iterations())
	}
}
