package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExactKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{0.1, 1.4}, // interpolation: pos = 0.4
	}
	for _, c := range cases {
		if got := Exact(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Exact(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestExactEdgeCases(t *testing.T) {
	if !math.IsNaN(Exact(nil, 0.5)) {
		t.Error("empty input should give NaN")
	}
	if !math.IsNaN(Exact([]float64{1}, -0.1)) || !math.IsNaN(Exact([]float64{1}, 1.1)) {
		t.Error("out-of-range q should give NaN")
	}
	if Exact([]float64{7}, 0.3) != 7 {
		t.Error("single element should be returned for any q")
	}
	// Input must not be reordered.
	xs := []float64{3, 1, 2}
	Exact(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Exact must not modify its input")
	}
}

func TestExactMany(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got := ExactMany(xs, []float64{0, 0.5, 1, -1})
	if got[0] != 1 || got[1] != 3 || got[2] != 5 || !math.IsNaN(got[3]) {
		t.Fatalf("ExactMany = %v", got)
	}
	for _, v := range ExactMany(nil, []float64{0.5}) {
		if !math.IsNaN(v) {
			t.Error("empty data should yield NaN")
		}
	}
}

func TestDeciles(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	d := Deciles(xs)
	for i := 0; i <= 10; i++ {
		if !almostEq(d[i], float64(i*10), 1e-9) {
			t.Errorf("decile %d = %v, want %d", i, d[i], i*10)
		}
	}
}

// TestDecilesMonotoneProperty: deciles are always non-decreasing and
// bounded by min/max.
func TestDecilesMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		d := Deciles(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if d[0] != sorted[0] || d[10] != sorted[len(sorted)-1] {
			return false
		}
		for i := 1; i <= 10; i++ {
			if d[i] < d[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestP2Median(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewP2(0.5)
	n := 50000
	for i := 0; i < n; i++ {
		p.Add(rng.NormFloat64())
	}
	if p.N() != n {
		t.Fatalf("N = %d", p.N())
	}
	if got := p.Value(); math.Abs(got) > 0.03 {
		t.Errorf("P2 median of N(0,1) = %v, want ~0", got)
	}
}

func TestP2Tail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewP2(0.9)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		p.Add(xs[i])
	}
	exact := Exact(xs, 0.9)
	if got := p.Value(); math.Abs(got-exact) > 0.1*exact {
		t.Errorf("P2 q90 = %v, exact = %v", got, exact)
	}
}

func TestP2Bootstrap(t *testing.T) {
	p := NewP2(0.5)
	if !math.IsNaN(p.Value()) {
		t.Error("empty estimator should return NaN")
	}
	p.Add(3)
	p.Add(1)
	if p.N() != 2 {
		t.Fatalf("N = %d", p.N())
	}
	if got := p.Value(); !almostEq(got, 2, 1e-12) {
		t.Errorf("bootstrap median = %v, want 2", got)
	}
}

func TestP2Panics(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) should panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}

// TestP2WithinDataRange: the estimate always lies within [min, max] of the
// observed data.
func TestP2WithinDataRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewP2(0.25)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 500; i++ {
			x := rng.NormFloat64() * 10
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			p.Add(x)
		}
		v := p.Value()
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
