// Package quantile provides the quantile machinery behind the persyst
// operator plugin (paper §VI-C), which re-implements the PerSyst transport
// of performance data through quantiles: exact batch quantiles with linear
// interpolation, the decile vectors the paper plots in Figure 7, and a P²
// streaming estimator for single quantiles over unbounded streams.
package quantile

import (
	"math"
	"sort"
)

// Exact returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks (the "type 7" estimator used by R
// and NumPy). It returns NaN for empty input or q outside [0, 1]. xs is
// not modified.
func Exact(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

// ExactMany returns the quantiles of xs at each probability in qs,
// sorting the data only once. Invalid probabilities yield NaN entries.
func ExactMany(xs []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			out[i] = math.NaN()
			continue
		}
		out[i] = sortedQuantile(s, q)
	}
	return out
}

func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Deciles returns the 11-element vector of deciles 0..10 of xs (decile 0
// is the minimum, 5 the median, 10 the maximum) — the exact statistic the
// persyst plugin publishes per job. Empty input yields NaN entries.
func Deciles(xs []float64) [11]float64 {
	var out [11]float64
	qs := make([]float64, 11)
	for i := range qs {
		qs[i] = float64(i) / 10
	}
	vals := ExactMany(xs, qs)
	copy(out[:], vals)
	return out
}

// P2 estimates a single quantile of an unbounded stream with O(1) memory
// using the P² algorithm (Jain & Chlamtac, 1985). It maintains five
// markers whose heights converge to the target quantile.
type P2 struct {
	q        float64
	n        int
	heights  [5]float64
	pos      [5]float64 // actual marker positions (1-based)
	desired  [5]float64
	deltas   [5]float64
	boot     [5]float64
	bootSize int
}

// NewP2 creates a streaming estimator for the q-quantile (0 < q < 1).
// It panics on out-of-range q, which indicates a configuration bug.
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		panic("quantile: P2 requires 0 < q < 1")
	}
	p := &P2{q: q}
	p.deltas = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add folds one observation into the estimator.
func (p *P2) Add(x float64) {
	if p.bootSize < 5 {
		p.boot[p.bootSize] = x
		p.bootSize++
		if p.bootSize == 5 {
			s := p.boot
			sort.Float64s(s[:])
			p.heights = s
			p.pos = [5]float64{1, 2, 3, 4, 5}
			p.desired = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
			p.n = 5
		}
		return
	}
	p.n++
	// Locate the cell containing x and update extreme heights.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.desired {
		p.desired[i] += p.deltas[i]
	}
	// Adjust interior markers with parabolic (or linear) interpolation.
	for i := 1; i <= 3; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations seen.
func (p *P2) N() int {
	if p.bootSize < 5 {
		return p.bootSize
	}
	return p.n
}

// Value returns the current quantile estimate. Before five observations
// have arrived it falls back to the exact quantile of the bootstrap
// buffer; with no data it returns NaN.
func (p *P2) Value() float64 {
	if p.bootSize == 0 {
		return math.NaN()
	}
	if p.bootSize < 5 {
		return Exact(p.boot[:p.bootSize], p.q)
	}
	return p.heights[2]
}
