package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeRegression generates y = 3*x0 - 2*x1 + noise.
func makeRegression(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64()}
		y[i] = 3*x[i][0] - 2*x[i][1] + rng.NormFloat64()*noise
	}
	return x, y
}

func TestFitPredictLinearTarget(t *testing.T) {
	x, y := makeRegression(2000, 0.1, 1)
	f := New(Params{Trees: 40, MaxDepth: 14, Seed: 7})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !f.Trained() || f.Dim() != 3 {
		t.Fatal("forest should be trained with dim 3")
	}
	// Out-of-sample error should be small relative to target range (~50).
	xt, yt := makeRegression(300, 0.1, 99)
	var mae float64
	for i := range xt {
		mae += math.Abs(f.Predict(xt[i]) - yt[i])
	}
	mae /= float64(len(xt))
	if mae > 2.5 {
		t.Errorf("MAE = %v, want < 2.5", mae)
	}
}

func TestPredictConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	f := New(Params{Trees: 5, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{2.5}); got != 5 {
		t.Errorf("constant prediction = %v, want 5", got)
	}
}

func TestFitErrors(t *testing.T) {
	f := New(Params{})
	if err := f.Fit(nil, nil); err != ErrNoData {
		t.Errorf("empty fit err = %v", err)
	}
	if err := f.Fit([][]float64{{1}}, []float64{1, 2}); err != ErrNoData {
		t.Errorf("length mismatch err = %v", err)
	}
	if err := f.Fit([][]float64{{}}, []float64{1}); err != ErrShape {
		t.Errorf("empty features err = %v", err)
	}
	if err := f.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err != ErrShape {
		t.Errorf("ragged features err = %v", err)
	}
}

func TestPredictUntrained(t *testing.T) {
	f := New(Params{})
	if !math.IsNaN(f.Predict([]float64{1})) {
		t.Error("untrained Predict should be NaN")
	}
	x, y := makeRegression(50, 0.1, 3)
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(f.Predict([]float64{1})) {
		t.Error("wrong-dimension Predict should be NaN")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	x, y := makeRegression(300, 0.5, 5)
	a := New(Params{Trees: 10, Seed: 42})
	b := New(Params{Trees: 10, Seed: 42})
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{5, 5, 0.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("same seed should give identical predictions")
	}
	c := New(Params{Trees: 10, Seed: 43})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if a.Predict(probe) == c.Predict(probe) {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestImportanceIdentifiesSignal(t *testing.T) {
	// Feature 2 is pure noise; features 0 and 1 carry all signal.
	x, y := makeRegression(1500, 0.1, 11)
	f := New(Params{Trees: 20, Seed: 3})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	if len(imp) != 3 {
		t.Fatalf("importance len = %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sums to %v", sum)
	}
	if imp[2] > imp[0] || imp[2] > imp[1] {
		t.Errorf("noise feature ranked too high: %v", imp)
	}
}

func TestImportanceUntrained(t *testing.T) {
	if New(Params{}).Importance() != nil {
		t.Error("untrained Importance should be nil")
	}
}

// TestPredictionWithinRangeProperty: forest predictions are averages of
// leaf means, so they can never leave the [min(y), max(y)] envelope.
func TestPredictionWithinRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		x := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			x[i] = []float64{rng.Float64(), rng.Float64()}
			y[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		fr := New(Params{Trees: 8, Seed: seed})
		if err := fr.Fit(x, y); err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			p := fr.Predict([]float64{rng.Float64(), rng.Float64()})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMinLeafRespected(t *testing.T) {
	// With MinLeaf = n the tree cannot split: every prediction equals the
	// bootstrap-sample mean, which lies near the global mean.
	x, y := makeRegression(200, 0, 2)
	f := New(Params{Trees: 30, MinLeaf: 200, Seed: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	if got := f.Predict([]float64{0, 0, 0}); math.Abs(got-mean) > 3 {
		t.Errorf("no-split prediction = %v, global mean = %v", got, mean)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Trees != 32 || p.MaxDepth != 12 || p.MinLeaf != 2 {
		t.Errorf("defaults = %+v", p)
	}
}
