// Package forest implements random-forest regression from scratch: CART
// regression trees grown by variance-reduction splitting, combined by
// bootstrap aggregation with per-split random feature subsets.
//
// It is the model behind the regressor operator plugin (paper §VI-B),
// standing in for the OpenCV random forest the paper used: feature vectors
// of window statistics are regressed onto the next-interval power reading.
package forest

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrNoData reports a Fit call without training samples.
var ErrNoData = errors.New("forest: no training data")

// ErrShape reports ragged or empty feature vectors.
var ErrShape = errors.New("forest: inconsistent feature dimensions")

// Params configures forest growth. The zero value is completed by
// sensible defaults in New.
type Params struct {
	// Trees is the ensemble size (default 32).
	Trees int
	// MaxDepth bounds tree depth (default 12).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 2).
	MinLeaf int
	// MaxFeatures is the number of features examined per split; 0 means
	// ceil(d/3), the standard heuristic for regression forests.
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Trees <= 0 {
		p.Trees = 32
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 2
	}
	return p
}

// node is one tree node in the flat array representation: leaves carry the
// prediction in value and have left == -1.
type node struct {
	feature     int32
	left, right int32
	threshold   float64
	value       float64
}

// Tree is a single CART regression tree.
type Tree struct {
	nodes []node
}

// Forest is a trained random-forest regressor.
type Forest struct {
	params Params
	trees  []Tree
	dim    int
	// importance accumulates per-feature total variance reduction,
	// normalised at query time.
	importance []float64
}

// New creates an untrained forest with the given parameters.
func New(p Params) *Forest {
	return &Forest{params: p.withDefaults()}
}

// Dim returns the feature dimensionality the forest was trained with, or
// 0 before training.
func (f *Forest) Dim() int { return f.dim }

// Trained reports whether Fit has completed successfully.
func (f *Forest) Trained() bool { return len(f.trees) > 0 }

// Fit trains the forest on feature matrix x (one sample per row) and
// targets y. Previous training state is replaced.
func (f *Forest) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrNoData
	}
	dim := len(x[0])
	if dim == 0 {
		return ErrShape
	}
	for _, row := range x {
		if len(row) != dim {
			return ErrShape
		}
	}
	p := f.params
	maxFeat := p.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = (dim + 2) / 3
	}
	if maxFeat > dim {
		maxFeat = dim
	}
	f.dim = dim
	f.trees = make([]Tree, p.Trees)
	f.importance = make([]float64, dim)
	rng := rand.New(rand.NewSource(p.Seed))
	g := grower{
		x: x, y: y,
		maxDepth: p.MaxDepth, minLeaf: p.MinLeaf, maxFeat: maxFeat,
		featOrder: make([]int, dim),
		imp:       f.importance,
	}
	for i := range g.featOrder {
		g.featOrder[i] = i
	}
	idx := make([]int, len(x))
	for t := range f.trees {
		// Bootstrap sample with replacement.
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		g.rng = rand.New(rand.NewSource(rng.Int63()))
		f.trees[t] = g.grow(idx)
	}
	return nil
}

// Predict returns the forest's regression estimate for one feature
// vector: the mean of the per-tree predictions. It returns NaN when the
// forest is untrained or the vector has the wrong length.
func (f *Forest) Predict(x []float64) float64 {
	if !f.Trained() || len(x) != f.dim {
		return math.NaN()
	}
	var s float64
	for i := range f.trees {
		s += f.trees[i].predict(x)
	}
	return s / float64(len(f.trees))
}

// Importance returns the per-feature importance scores (total variance
// reduction attributed to splits on each feature), normalised to sum to 1.
// It returns nil before training.
func (f *Forest) Importance() []float64 {
	if f.importance == nil {
		return nil
	}
	out := make([]float64, len(f.importance))
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range f.importance {
		out[i] = v / total
	}
	return out
}

func (t *Tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.left < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// grower holds the shared state of one tree-growing pass.
type grower struct {
	x         [][]float64
	y         []float64
	maxDepth  int
	minLeaf   int
	maxFeat   int
	rng       *rand.Rand
	featOrder []int
	imp       []float64
}

func (g *grower) grow(idx []int) Tree {
	t := Tree{}
	g.build(&t, idx, 0)
	return t
}

// build grows the subtree over samples idx and returns its node index.
func (g *grower) build(t *Tree, idx []int, depth int) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{left: -1, right: -1})

	mean, variance := meanVar(g.y, idx)
	if depth >= g.maxDepth || len(idx) < 2*g.minLeaf || variance == 0 {
		t.nodes[self].value = mean
		return self
	}
	feat, thr, gain := g.bestSplit(idx, variance)
	if feat < 0 {
		t.nodes[self].value = mean
		return self
	}
	g.imp[feat] += gain * float64(len(idx))
	left := idx[:0:0]
	right := idx[:0:0]
	for _, i := range idx {
		if g.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	t.nodes[self].feature = int32(feat)
	t.nodes[self].threshold = thr
	l := g.build(t, left, depth+1)
	r := g.build(t, right, depth+1)
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit scans a random subset of features for the split maximising
// variance reduction. It returns feature -1 when no valid split exists.
func (g *grower) bestSplit(idx []int, parentVar float64) (feat int, thr, gain float64) {
	feat = -1
	// Partial Fisher-Yates over the feature order to pick maxFeat features.
	for i := 0; i < g.maxFeat; i++ {
		j := i + g.rng.Intn(len(g.featOrder)-i)
		g.featOrder[i], g.featOrder[j] = g.featOrder[j], g.featOrder[i]
	}
	type pair struct{ x, y float64 }
	pairs := make([]pair, len(idx))
	for fi := 0; fi < g.maxFeat; fi++ {
		fcol := g.featOrder[fi]
		for k, i := range idx {
			pairs[k] = pair{g.x[i][fcol], g.y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })
		// Prefix sums enable O(1) variance evaluation per split point.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, p := range pairs {
			sumR += p.y
			sumSqR += p.y * p.y
		}
		n := float64(len(pairs))
		for k := 0; k < len(pairs)-1; k++ {
			yv := pairs[k].y
			sumL += yv
			sumSqL += yv * yv
			sumR -= yv
			sumSqR -= yv * yv
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < g.minLeaf || int(nr) < g.minLeaf {
				continue
			}
			if pairs[k].x == pairs[k+1].x {
				continue // cannot split between equal values
			}
			varL := sumSqL/nl - (sumL/nl)*(sumL/nl)
			varR := sumSqR/nr - (sumR/nr)*(sumR/nr)
			red := parentVar - (nl*varL+nr*varR)/n
			if red > gain {
				gain = red
				feat = fcol
				thr = 0.5 * (pairs[k].x + pairs[k+1].x)
			}
		}
	}
	return feat, thr, gain
}

func meanVar(y []float64, idx []int) (mean, variance float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	mean = s / float64(len(idx))
	var v float64
	for _, i := range idx {
		d := y[i] - mean
		v += d * d
	}
	return mean, v / float64(len(idx))
}
