package forest

import (
	"errors"
	"math/rand"
	"sort"
)

// ErrNoClasses reports classifier training without any labels.
var ErrNoClasses = errors.New("forest: no class labels")

// Classifier is a random forest of Gini-impurity classification trees
// with majority voting — the model family behind application
// fingerprinting (taxonomy of the paper's Figure 1): mapping windows of
// derived performance metrics to the application generating them.
type Classifier struct {
	params  Params
	trees   []Tree
	classes []string
	dim     int
}

// NewClassifier creates an untrained classifier.
func NewClassifier(p Params) *Classifier {
	return &Classifier{params: p.withDefaults()}
}

// Classes returns the class names in index order, or nil before training.
func (c *Classifier) Classes() []string {
	return append([]string(nil), c.classes...)
}

// Trained reports whether Fit has completed.
func (c *Classifier) Trained() bool { return len(c.trees) > 0 }

// Dim returns the trained feature dimensionality.
func (c *Classifier) Dim() int { return c.dim }

// Fit trains the forest on feature rows x with string labels y.
func (c *Classifier) Fit(x [][]float64, y []string) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrNoData
	}
	dim := len(x[0])
	if dim == 0 {
		return ErrShape
	}
	for _, row := range x {
		if len(row) != dim {
			return ErrShape
		}
	}
	// Stable class indexing: sorted unique labels.
	seen := map[string]bool{}
	for _, l := range y {
		seen[l] = true
	}
	if len(seen) == 0 {
		return ErrNoClasses
	}
	classes := make([]string, 0, len(seen))
	for l := range seen {
		classes = append(classes, l)
	}
	sort.Strings(classes)
	index := make(map[string]int, len(classes))
	for i, l := range classes {
		index[l] = i
	}
	labels := make([]int, len(y))
	for i, l := range y {
		labels[i] = index[l]
	}

	p := c.params
	maxFeat := p.MaxFeatures
	if maxFeat <= 0 {
		// sqrt(d) is the standard default for classification forests.
		for maxFeat*maxFeat < dim {
			maxFeat++
		}
	}
	if maxFeat > dim {
		maxFeat = dim
	}
	c.dim = dim
	c.classes = classes
	c.trees = make([]Tree, p.Trees)
	rng := rand.New(rand.NewSource(p.Seed))
	g := classGrower{
		x: x, labels: labels, k: len(classes),
		maxDepth: p.MaxDepth, minLeaf: p.MinLeaf, maxFeat: maxFeat,
		featOrder: make([]int, dim),
	}
	for i := range g.featOrder {
		g.featOrder[i] = i
	}
	idx := make([]int, len(x))
	for t := range c.trees {
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		g.rng = rand.New(rand.NewSource(rng.Int63()))
		c.trees[t] = g.grow(idx)
	}
	return nil
}

// Predict returns the majority-vote class for x together with the vote
// fraction as a confidence in (0, 1]. Untrained classifiers and
// wrong-size vectors yield ("", 0).
func (c *Classifier) Predict(x []float64) (string, float64) {
	probs := c.Proba(x)
	if probs == nil {
		return "", 0
	}
	best := 0
	for i := range probs {
		if probs[i] > probs[best] {
			best = i
		}
	}
	return c.classes[best], probs[best]
}

// Proba returns the per-class vote fractions for x, aligned with
// Classes(); nil when untrained or mis-sized.
func (c *Classifier) Proba(x []float64) []float64 {
	if !c.Trained() || len(x) != c.dim {
		return nil
	}
	votes := make([]float64, len(c.classes))
	for i := range c.trees {
		votes[int(c.trees[i].predict(x))]++
	}
	for i := range votes {
		votes[i] /= float64(len(c.trees))
	}
	return votes
}

// classGrower grows one Gini classification tree per bootstrap sample.
type classGrower struct {
	x         [][]float64
	labels    []int
	k         int
	maxDepth  int
	minLeaf   int
	maxFeat   int
	rng       *rand.Rand
	featOrder []int
}

func (g *classGrower) grow(idx []int) Tree {
	t := Tree{}
	g.build(&t, idx, 0)
	return t
}

// counts tallies class frequencies over idx.
func (g *classGrower) counts(idx []int) []int {
	out := make([]int, g.k)
	for _, i := range idx {
		out[g.labels[i]]++
	}
	return out
}

// gini returns the Gini impurity of a count vector with total n.
func gini(counts []int, n float64) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / n
		s -= p * p
	}
	return s
}

func majority(counts []int) int {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

func (g *classGrower) build(t *Tree, idx []int, depth int) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{left: -1, right: -1})
	counts := g.counts(idx)
	parentGini := gini(counts, float64(len(idx)))
	if depth >= g.maxDepth || len(idx) < 2*g.minLeaf || parentGini == 0 {
		t.nodes[self].value = float64(majority(counts))
		return self
	}
	feat, thr := g.bestSplit(idx, parentGini)
	if feat < 0 {
		t.nodes[self].value = float64(majority(counts))
		return self
	}
	left := idx[:0:0]
	right := idx[:0:0]
	for _, i := range idx {
		if g.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	t.nodes[self].feature = int32(feat)
	t.nodes[self].threshold = thr
	l := g.build(t, left, depth+1)
	r := g.build(t, right, depth+1)
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit scans a random feature subset for the split maximising Gini
// reduction, with incremental class-count updates per split point.
func (g *classGrower) bestSplit(idx []int, parentGini float64) (feat int, thr float64) {
	feat = -1
	bestGain := 1e-12
	for i := 0; i < g.maxFeat; i++ {
		j := i + g.rng.Intn(len(g.featOrder)-i)
		g.featOrder[i], g.featOrder[j] = g.featOrder[j], g.featOrder[i]
	}
	type pair struct {
		x     float64
		label int
	}
	pairs := make([]pair, len(idx))
	leftCounts := make([]int, g.k)
	rightCounts := make([]int, g.k)
	n := float64(len(idx))
	for fi := 0; fi < g.maxFeat; fi++ {
		fcol := g.featOrder[fi]
		for kk, i := range idx {
			pairs[kk] = pair{g.x[i][fcol], g.labels[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })
		for i := range leftCounts {
			leftCounts[i] = 0
			rightCounts[i] = 0
		}
		for _, p := range pairs {
			rightCounts[p.label]++
		}
		for kk := 0; kk < len(pairs)-1; kk++ {
			leftCounts[pairs[kk].label]++
			rightCounts[pairs[kk].label]--
			nl := float64(kk + 1)
			nr := n - nl
			if int(nl) < g.minLeaf || int(nr) < g.minLeaf {
				continue
			}
			if pairs[kk].x == pairs[kk+1].x {
				continue
			}
			gain := parentGini - (nl*gini(leftCounts, nl)+nr*gini(rightCounts, nr))/n
			if gain > bestGain {
				bestGain = gain
				feat = fcol
				thr = 0.5 * (pairs[kk].x + pairs[kk+1].x)
			}
		}
	}
	return feat, thr
}
