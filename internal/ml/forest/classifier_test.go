package forest

import (
	"math"
	"math/rand"
	"testing"
)

// makeClasses generates three separable blobs in 2D labelled a/b/c.
func makeClasses(n int, spread float64, seed int64) ([][]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	centers := map[string][2]float64{
		"a": {0, 0}, "b": {10, 0}, "c": {0, 10},
	}
	var x [][]float64
	var y []string
	for label, c := range centers {
		for i := 0; i < n; i++ {
			x = append(x, []float64{
				c[0] + rng.NormFloat64()*spread,
				c[1] + rng.NormFloat64()*spread,
			})
			y = append(y, label)
		}
	}
	return x, y
}

func TestClassifierSeparableBlobs(t *testing.T) {
	x, y := makeClasses(150, 1.0, 1)
	c := NewClassifier(Params{Trees: 20, Seed: 5})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !c.Trained() || c.Dim() != 2 {
		t.Fatal("not trained")
	}
	if got := c.Classes(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("classes = %v", got)
	}
	// Held-out accuracy on fresh samples.
	xt, yt := makeClasses(50, 1.0, 99)
	correct := 0
	for i := range xt {
		pred, conf := c.Predict(xt[i])
		if pred == yt[i] {
			correct++
		}
		if conf <= 0 || conf > 1 {
			t.Fatalf("confidence = %v", conf)
		}
	}
	acc := float64(correct) / float64(len(xt))
	if acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95 on separable blobs", acc)
	}
}

func TestClassifierProba(t *testing.T) {
	x, y := makeClasses(100, 0.5, 2)
	c := NewClassifier(Params{Trees: 15, Seed: 3})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p := c.Proba([]float64{0, 0})
	if len(p) != 3 {
		t.Fatalf("proba = %v", p)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Center of class "a" should dominate.
	if p[0] < 0.9 {
		t.Errorf("p(a) at its center = %v", p[0])
	}
}

func TestClassifierErrors(t *testing.T) {
	c := NewClassifier(Params{})
	if err := c.Fit(nil, nil); err != ErrNoData {
		t.Errorf("nil fit err = %v", err)
	}
	if err := c.Fit([][]float64{{1}}, []string{"a", "b"}); err != ErrNoData {
		t.Errorf("length mismatch err = %v", err)
	}
	if err := c.Fit([][]float64{{}}, []string{"a"}); err != ErrShape {
		t.Errorf("empty row err = %v", err)
	}
	if err := c.Fit([][]float64{{1, 2}, {1}}, []string{"a", "b"}); err != ErrShape {
		t.Errorf("ragged err = %v", err)
	}
	if label, conf := c.Predict([]float64{1}); label != "" || conf != 0 {
		t.Error("untrained Predict should be empty")
	}
	if c.Proba([]float64{1}) != nil {
		t.Error("untrained Proba should be nil")
	}
	if c.Classes() != nil {
		t.Error("untrained Classes should be nil")
	}
}

func TestClassifierSingleClass(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []string{"only", "only", "only"}
	c := NewClassifier(Params{Trees: 3, Seed: 1})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	label, conf := c.Predict([]float64{5})
	if label != "only" || conf != 1 {
		t.Fatalf("single class predict = %q, %v", label, conf)
	}
}

func TestClassifierDeterministic(t *testing.T) {
	x, y := makeClasses(80, 2.0, 7)
	a := NewClassifier(Params{Trees: 10, Seed: 11})
	b := NewClassifier(Params{Trees: 10, Seed: 11})
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		probe := []float64{float64(i) - 5, float64(i) / 2}
		la, _ := a.Predict(probe)
		lb, _ := b.Predict(probe)
		if la != lb {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestClassifierOverlappingClassesStillMajority(t *testing.T) {
	// Heavy overlap: accuracy need not be high, but predictions must be
	// valid class names.
	x, y := makeClasses(60, 8.0, 13)
	c := NewClassifier(Params{Trees: 8, Seed: 2})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"a": true, "b": true, "c": true}
	for i := range x {
		label, _ := c.Predict(x[i])
		if !valid[label] {
			t.Fatalf("invalid label %q", label)
		}
	}
}

func TestGiniHelper(t *testing.T) {
	if g := gini([]int{5, 0, 0}, 5); g != 0 {
		t.Errorf("pure gini = %v", g)
	}
	if g := gini([]int{5, 5}, 10); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("balanced gini = %v", g)
	}
	if g := gini([]int{}, 0); g != 0 {
		t.Errorf("empty gini = %v", g)
	}
}
