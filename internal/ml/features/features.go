// Package features extracts fixed-length statistical feature vectors from
// windows of sensor readings, mirroring the feature stage of the regressor
// plugin (paper §VI-B): "for each input sensor of a certain unit a series
// of statistical features (e.g., mean or standard deviation) are computed
// from its recent readings", then concatenated into the model input.
package features

import (
	"github.com/dcdb/wintermute/internal/ml/stats"
	"github.com/dcdb/wintermute/internal/sensor"
)

// PerSensor is the number of features extracted per input sensor.
const PerSensor = 7

// Names lists the per-sensor feature names in extraction order.
var Names = [PerSensor]string{"mean", "std", "min", "max", "last", "slope", "delta"}

// Extract appends the feature vector of one reading window to dst and
// returns the extended slice. The slope feature is computed against time
// in seconds so its scale is interval-independent. Empty windows
// contribute zeros, keeping vector length stable for the model.
func Extract(window []sensor.Reading, dst []float64) []float64 {
	if len(window) == 0 {
		for i := 0; i < PerSensor; i++ {
			dst = append(dst, 0)
		}
		return dst
	}
	var w stats.Welford
	for _, r := range window {
		w.Add(r.Value)
	}
	first, last := window[0], window[len(window)-1]
	slope := 0.0
	if len(window) >= 2 {
		xs := make([]float64, len(window))
		ys := make([]float64, len(window))
		t0 := first.Time
		for i, r := range window {
			xs[i] = float64(r.Time-t0) / 1e9
			ys[i] = r.Value
		}
		slope = stats.Slope(xs, ys)
	}
	return append(dst,
		w.Mean(), w.Std(), w.Min(), w.Max(),
		last.Value, slope, last.Value-first.Value)
}

// VectorSize returns the total feature-vector length for a unit with the
// given number of input sensors.
func VectorSize(numSensors int) int { return numSensors * PerSensor }
