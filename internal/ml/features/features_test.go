package features

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

func window(vals ...float64) []sensor.Reading {
	rs := make([]sensor.Reading, len(vals))
	for i, v := range vals {
		rs[i] = sensor.Reading{Value: v, Time: int64(i) * int64(time.Second)}
	}
	return rs
}

func TestExtractKnown(t *testing.T) {
	f := Extract(window(1, 2, 3, 4, 5), nil)
	if len(f) != PerSensor {
		t.Fatalf("len = %d, want %d", len(f), PerSensor)
	}
	// mean, std, min, max, last, slope, delta
	if f[0] != 3 {
		t.Errorf("mean = %v", f[0])
	}
	if math.Abs(f[1]-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v", f[1])
	}
	if f[2] != 1 || f[3] != 5 || f[4] != 5 {
		t.Errorf("min/max/last = %v/%v/%v", f[2], f[3], f[4])
	}
	if math.Abs(f[5]-1) > 1e-12 { // 1 unit per second
		t.Errorf("slope = %v", f[5])
	}
	if f[6] != 4 {
		t.Errorf("delta = %v", f[6])
	}
}

func TestExtractEmpty(t *testing.T) {
	f := Extract(nil, nil)
	if len(f) != PerSensor {
		t.Fatalf("len = %d", len(f))
	}
	for i, v := range f {
		if v != 0 {
			t.Errorf("feature %d = %v, want 0", i, v)
		}
	}
}

func TestExtractSingle(t *testing.T) {
	f := Extract(window(7), nil)
	if f[0] != 7 || f[1] != 0 || f[5] != 0 || f[6] != 0 {
		t.Errorf("single-reading features = %v", f)
	}
}

func TestExtractAppends(t *testing.T) {
	dst := []float64{99}
	f := Extract(window(1, 2), dst)
	if len(f) != 1+PerSensor || f[0] != 99 {
		t.Fatalf("append semantics broken: %v", f)
	}
}

func TestVectorSize(t *testing.T) {
	if VectorSize(3) != 3*PerSensor {
		t.Errorf("VectorSize = %d", VectorSize(3))
	}
}

func TestNamesMatchCount(t *testing.T) {
	if len(Names) != PerSensor {
		t.Errorf("Names = %d entries, PerSensor = %d", len(Names), PerSensor)
	}
}

// TestConstantWindowProperty: a constant window has zero std, slope and
// delta, and mean == min == max == last == the constant.
func TestConstantWindowProperty(t *testing.T) {
	f := func(v float64, nSeed uint8) bool {
		// Exclude magnitudes where summing n copies overflows float64;
		// that is an inherent limit of batch means, not a feature bug.
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
			return true
		}
		n := int(nSeed%20) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = v
		}
		ft := Extract(window(vals...), nil)
		return ft[0] == v && ft[1] == 0 && ft[2] == v && ft[3] == v &&
			ft[4] == v && ft[5] == 0 && ft[6] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestShiftInvarianceProperty: shifting timestamps must not change any
// feature (slope uses relative time).
func TestShiftInvarianceProperty(t *testing.T) {
	f := func(shiftSeed uint32) bool {
		w := window(5, 3, 8, 1)
		shifted := make([]sensor.Reading, len(w))
		for i, r := range w {
			shifted[i] = sensor.Reading{Value: r.Value, Time: r.Time + int64(shiftSeed)}
		}
		a := Extract(w, nil)
		b := Extract(shifted, nil)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
