// Package linalg provides the small dense linear-algebra kernel needed by
// the machine-learning substrates: row-major matrices, Cholesky
// factorisation, triangular solves, determinants and inverses of symmetric
// positive-definite matrices. The Bayesian Gaussian mixture plugin (paper
// §VI-D) is the main consumer, operating on low-dimensional covariance
// matrices.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD reports that a Cholesky factorisation failed because the
// matrix is not symmetric positive-definite.
var ErrNotSPD = errors.New("linalg: matrix not positive definite")

// ErrShape reports incompatible matrix/vector dimensions.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("linalg: non-positive dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrShape)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("%w: ragged row %d", ErrShape, i)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// AddScaled adds s*b to m in place; shapes must match.
func (m *Matrix) AddScaled(b *Matrix, s float64) error {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return ErrShape
	}
	for i := range m.Data {
		m.Data[i] += s * b.Data[i]
	}
	return nil
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Symmetrize averages m with its transpose in place (square matrices),
// cleaning up floating-point asymmetry from accumulation.
func (m *Matrix) Symmetrize() {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MatVec computes m·x.
func (m *Matrix) MatVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, ErrShape
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// AddOuter adds s * x xᵀ to m in place (square matrices only).
func (m *Matrix) AddOuter(x []float64, s float64) error {
	if m.Rows != m.Cols || len(x) != m.Rows {
		return ErrShape
	}
	for i := range x {
		for j := range x {
			m.Data[i*m.Cols+j] += s * x[i] * x[j]
		}
	}
	return nil
}

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite matrix A. A is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotSPD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholVec solves A x = b given the Cholesky factor L of A, using one
// forward and one backward substitution.
func SolveCholVec(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// LogDetChol returns log det(A) given the Cholesky factor L of A.
func LogDetChol(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// InvertSPD inverts a symmetric positive-definite matrix via its Cholesky
// factorisation.
func InvertSPD(a *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := SolveCholVec(l, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	inv.Symmetrize()
	return inv, nil
}

// MahalanobisSq returns (x-mu)ᵀ A⁻¹ (x-mu) given the Cholesky factor L of
// A: it solves L z = (x-mu) and returns ‖z‖².
func MahalanobisSq(l *Matrix, x, mu []float64) (float64, error) {
	n := l.Rows
	if len(x) != n || len(mu) != n {
		return 0, ErrShape
	}
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := x[i] - mu[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * z[k]
		}
		z[i] = s / l.At(i, i)
	}
	var d float64
	for _, v := range z {
		d += v * v
	}
	return d, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY computes y += s*x in place.
func AXPY(y, x []float64, s float64) {
	for i := range y {
		y[i] += s * x[i]
	}
}
