package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randSPD builds a random symmetric positive-definite matrix B Bᵀ + n·I.
func randSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			a.Set(i, j, s)
		}
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone should not alias")
	}
	id := Identity(3)
	if id.At(0, 0) != 1 || id.At(0, 1) != 0 {
		t.Fatal("Identity wrong")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil || m.At(1, 0) != 3 {
		t.Fatalf("FromRows: %v %v", m, err)
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestAddScaledScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	if err := a.AddScaled(b, 2); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3 || a.At(1, 1) != 6 {
		t.Fatalf("AddScaled result %v", a.Data)
	}
	a.Scale(0.5)
	if a.At(0, 0) != 1.5 {
		t.Fatal("Scale broken")
	}
	if err := a.AddScaled(NewMatrix(3, 3), 1); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestMatVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.MatVec([]float64{1, 1})
	if err != nil || y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec = %v, %v", y, err)
	}
	if _, err := m.MatVec([]float64{1}); err == nil {
		t.Error("bad vector length should fail")
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	if err := m.AddOuter([]float64{1, 2}, 2); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 4}, {4, 8}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("AddOuter = %v", m.Data)
			}
		}
	}
	if err := m.AddOuter([]float64{1}, 1); err == nil {
		t.Error("bad length should fail")
	}
}

func TestCholeskyKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.At(0, 0), 2, eps) || !almostEq(l.At(1, 0), 1, eps) ||
		!almostEq(l.At(1, 1), math.Sqrt(2), eps) {
		t.Fatalf("L = %v", l.Data)
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); err != ErrNotSPD {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err != ErrShape {
		t.Error("non-square should be ErrShape")
	}
}

// TestCholeskyReconstructionProperty: L Lᵀ must reproduce A.
func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		n := int(nSeed%4) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEq(s, a.At(i, j), 1e-8*(1+math.Abs(a.At(i, j)))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSolveCholProperty: A·x must reproduce b.
func TestSolveCholProperty(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		n := int(nSeed%4) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randSPD(n, rng)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x, err := SolveCholVec(l, b)
		if err != nil {
			return false
		}
		ax, err := a.MatVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-7*(1+math.Abs(b[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveCholShape(t *testing.T) {
	l := Identity(2)
	if _, err := SolveCholVec(l, []float64{1}); err != ErrShape {
		t.Error("bad b length should be ErrShape")
	}
}

func TestLogDetChol(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 0}, {0, 9}})
	l, _ := Cholesky(a)
	if !almostEq(LogDetChol(l), math.Log(36), eps) {
		t.Errorf("LogDet = %v, want log(36)", LogDetChol(l))
	}
}

func TestInvertSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSPD(3, rng)
	inv, err := InvertSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	// a * inv ≈ I
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += a.At(i, k) * inv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(s, want, 1e-8) {
				t.Fatalf("a*inv[%d,%d] = %v", i, j, s)
			}
		}
	}
}

func TestMahalanobisSq(t *testing.T) {
	a := Identity(2)
	l, _ := Cholesky(a)
	d, err := MahalanobisSq(l, []float64{3, 4}, []float64{0, 0})
	if err != nil || !almostEq(d, 25, eps) {
		t.Fatalf("Mahalanobis identity = %v, %v", d, err)
	}
	if _, err := MahalanobisSq(l, []float64{1}, []float64{0, 0}); err != ErrShape {
		t.Error("bad shapes should be ErrShape")
	}
	// Scaled covariance: distance shrinks with variance.
	a2, _ := FromRows([][]float64{{4, 0}, {0, 4}})
	l2, _ := Cholesky(a2)
	d2, _ := MahalanobisSq(l2, []float64{3, 4}, []float64{0, 0})
	if !almostEq(d2, 6.25, eps) {
		t.Fatalf("Mahalanobis scaled = %v", d2)
	}
}

func TestSymmetrize(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {4, 1}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize = %v", m.Data)
	}
}

func TestDotAXPY(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	y := []float64{1, 1}
	AXPY(y, []float64{2, 3}, 2)
	if y[0] != 5 || y[1] != 7 {
		t.Errorf("AXPY = %v", y)
	}
}
