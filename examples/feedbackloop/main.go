// Feedback loop: the control-operator pattern of paper §IV-d — "control
// operators at the end of the pipeline that use processed data to tune
// system knobs" (the runtime-optimization class of the taxonomy).
//
// A node saturated by HPL exceeds a 150 W power budget. A controller
// operator inside the Pusher watches the power sensor and publishes a
// DVFS target as an ordinary output sensor; an actuator applies that
// sensor to the hardware knob. The loop settles near the budget.
//
// Run with:
//
//	go run ./examples/feedbackloop
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
	"github.com/dcdb/wintermute/internal/plugins/controller"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

func main() {
	log.SetFlags(0)
	const budget = 150.0

	nav := navigator.New()
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 256, time.Second)
	if err := nav.AddSensor("/r01/n01/power"); err != nil {
		log.Fatal(err)
	}

	node := hardware.NewNode(hardware.Config{Cores: 8, Seed: 42})
	node.SetApp(workload.MustNew("hpl", 1, 1e9), 0)

	op, err := controller.New(controller.Config{
		OperatorConfig: core.OperatorConfig{
			Name:       "powercap",
			Inputs:     []string{"power"},
			Outputs:    []string{"freq-target"},
			Unit:       "/r01/n01/",
			IntervalMs: 1000,
		},
		BudgetW: budget,
		Gain:    0.004,
	}, qe)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HPL at full tilt, %g W budget, proportional DVFS controller:\n\n", budget)
	fmt.Printf("%6s %10s %12s\n", "t [s]", "power [W]", "freq knob")
	for t := int64(0); t <= 300; t++ {
		ns := t * int64(time.Second)
		now := time.Unix(0, ns)
		node.Advance(ns)
		//lint:ignore batchinsert one reading per simulated second, and the Tick below must observe it before the next sample exists — there is no batch to form
		sink.Push("/r01/n01/power", sensor.Reading{Value: node.Power(), Time: ns})
		if err := core.Tick(op, qe, sink, now); err != nil {
			log.Fatal(err)
		}
		// The actuator: apply the published control sensor to the knob.
		if r, ok := qe.Latest("/r01/n01/freq-target"); ok {
			node.SetFreqScale(r.Value)
		}
		if t%30 == 0 {
			fmt.Printf("%6d %10.1f %12.3f\n", t, node.Power(), node.FreqScale())
		}
	}
	avg, _ := qe.Average("/r01/n01/power", 60*time.Second)
	fmt.Printf("\nlast-minute average power: %.1f W (budget %g W)\n", avg, budget)
}
