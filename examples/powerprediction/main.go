// Power prediction: the paper's case study 1 (§VI-B) in miniature.
//
// A simulated compute node cycles through CORAL-2 applications while a
// regressor operator samples power and counter rates at 250 ms, builds
// its training set automatically, trains a random forest, and then
// predicts the next-interval power online. The example prints training
// progress, a live excerpt of real vs predicted power, and the final
// average relative error (paper: 6.2 %).
//
// Run with:
//
//	go run ./examples/powerprediction
package main

import (
	"fmt"
	"log"

	"github.com/dcdb/wintermute/internal/experiments"
)

func main() {
	log.SetFlags(0)
	cfg := experiments.QuickFig6()
	cfg.TrainingSetSize = 2000
	cfg.EvalSteps = 1200
	fmt.Printf("training a random forest on %d samples @%dms, then evaluating %d steps online...\n",
		cfg.TrainingSetSize, cfg.IntervalMs, cfg.EvalSteps)
	res, err := experiments.RunFig6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal vs predicted power (excerpt):\n")
	fmt.Printf("%8s %10s %10s %8s\n", "t [s]", "real [W]", "pred [W]", "err")
	step := len(res.Series) / 20
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Series); i += step {
		pt := res.Series[i]
		rel := 0.0
		if pt.Real != 0 {
			rel = (pt.Pred - pt.Real) / pt.Real
		}
		fmt.Printf("%8.1f %10.1f %10.1f %7.1f%%\n", pt.T, pt.Real, pt.Pred, 100*rel)
	}
	fmt.Printf("\naverage relative error: %.1f%% (paper reports 6.2%% at 250 ms)\n",
		100*res.AvgRelError)
}
