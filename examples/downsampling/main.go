// Downsampling: bucketed aggregates from a persistent store.
//
// The example ingests a day of per-minute rack power readings into a
// Collect Agent backed by the embedded tsdb engine, flushes them into
// compressed segments, and then queries hourly averages three ways:
// through the Query Engine's Downsample API, through the REST /query
// endpoint with op/step, and fanned out over a topic wildcard. The
// aggregates are evaluated inside the storage engine — fully-covered
// chunks answer from flush-time pre-aggregates without decoding —
// so no raw reading is materialized anywhere in the process.
//
// Run with:
//
//	go run ./examples/downsampling
//
// The equivalent REST calls against a live daemon are printed as the
// example executes them.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "wintermute-downsampling-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	agent, err := collect.New(collect.Config{StoreDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	// A day of per-minute readings for four nodes: a sinusoidal daily
	// load curve plus per-node offsets.
	base := time.Now().Add(-24 * time.Hour).Truncate(time.Minute)
	topics := []sensor.Topic{
		"/r00/n00/power", "/r00/n01/power", "/r00/n02/power", "/r00/n03/power",
	}
	for ni, tp := range topics {
		batch := make([]sensor.Reading, 0, 24*60)
		for minute := 0; minute < 24*60; minute++ {
			load := 250 + 80*math.Sin(2*math.Pi*float64(minute)/(24*60)) + 10*float64(ni)
			batch = append(batch, sensor.At(load, base.Add(time.Duration(minute)*time.Minute)))
		}
		agent.IngestBatch(tp, batch)
	}
	// Flush the heads into a segment the way the janitor would on its
	// cadence: this is what records the per-chunk pre-aggregates.
	if err := agent.DB.Flush(); err != nil {
		log.Fatal(err)
	}
	st := agent.DB.Stats()
	log.Printf("ingested %d readings over %d topics -> %d segment(s), %.2f B/reading on disk\n",
		st.TotalReadings, st.Topics, st.Segments, float64(st.DiskBytes)/float64(st.TotalReadings))

	// --- 1. Hourly averages through the Query Engine -----------------
	t0, t1 := base.UnixNano(), base.Add(24*time.Hour).UnixNano()
	hour := int64(time.Hour)
	buckets := agent.QE.Downsample(topics[0], t0, t1-1, hour, nil)
	log.Printf("hourly average power, %s:", topics[0])
	for _, b := range buckets[:6] {
		avg, _ := b.Value(store.AggAvg)
		log.Printf("  %s  %6.1f W  (%d samples)",
			time.Unix(0, b.Start).Format("15:04"), avg, b.Count)
	}
	log.Printf("  ... %d buckets total", len(buckets))

	// --- 2. The same query over REST ---------------------------------
	srv, err := rest.Serve("127.0.0.1:0", agent.Manager, agent.QE)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{
		fmt.Sprintf("/query?sensor=%s&op=avg&start=%d&end=%d&step=6h", topics[0], t0, t1-1),
		// Wildcard fan-out: every sensor below /r00, with a combined
		// roll-up ('#' is URL-escaped as %23).
		fmt.Sprintf("/query?sensor=/r00/%%23&op=max&start=%d&end=%d", t0, t1-1),
	} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		out := strings.TrimSpace(string(body))
		if len(out) > 220 {
			out = out[:220] + "..."
		}
		log.Printf("GET %s\n  -> %s", path, out)
	}

	// --- 3. The whole-day aggregate is answered from chunk metadata --
	total := agent.QE.AggregateAbsolute(topics[0], t0, t1-1)
	avg, _ := total.Value(store.AggAvg)
	log.Printf("whole-day aggregate for %s: n=%d avg=%.1f min=%.1f max=%.1f (O(1) from pre-aggregates)",
		topics[0], total.Count, avg, total.Min, total.Max)
}
