// Application fingerprinting: the "application fingerprinting" class of
// the paper's ODA taxonomy (Figure 1) as a Wintermute operator.
//
// Two simulated nodes run labelled jobs (LAMMPS and Kripke alternating);
// the fingerprint operator learns a random-forest classifier over windows
// of derived performance metrics, then recognises which application is
// running from the metrics alone — the building block for
// history-correlated scheduling decisions.
//
// Run with:
//
//	go run ./examples/fingerprinting
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
	"github.com/dcdb/wintermute/internal/plugins/fingerprint"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/jobs"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

func main() {
	log.SetFlags(0)
	nav := navigator.New()
	for _, s := range []string{"cpi", "miss-rate"} {
		if err := nav.AddSensor(sensor.Topic("/r01/n01/").Join(s)); err != nil {
			log.Fatal(err)
		}
	}
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 64, time.Second)
	table := jobs.NewTable()

	node := hardware.NewNode(hardware.Config{Cores: 8, Seed: 7})
	path := sensor.Topic("/r01/n01/")

	op, err := fingerprint.New(fingerprint.Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "fingerprint",
			Inputs:  []string{"cpi", "miss-rate"},
			Outputs: []string{"app-class", "app-conf"},
			Unit:    string(path),
		},
		TrainingSetSize: 150,
		Trees:           16,
		Seed:            3,
	}, qe, core.Env{Jobs: table})
	if err != nil {
		log.Fatal(err)
	}

	var prevCy, prevIn, prevMs float64
	step := func(t int64) {
		ns := t * int64(time.Second)
		node.Advance(ns)
		var cy, in, ms float64
		for c := 0; c < 8; c++ {
			c1, i1, m1, _, _ := node.CoreCounters(c)
			cy, in, ms = cy+c1, in+i1, ms+m1
		}
		cpi := 0.0
		if in > prevIn {
			cpi = (cy - prevCy) / (in - prevIn)
		}
		sink.Push(path.Join("cpi"), sensor.Reading{Value: cpi, Time: ns})
		sink.Push(path.Join("miss-rate"), sensor.Reading{Value: ms - prevMs, Time: ns})
		prevCy, prevIn, prevMs = cy, in, ms
		if t > 2 {
			if err := core.Tick(op, qe, sink, time.Unix(0, ns)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Training: alternate labelled jobs.
	fmt.Println("training on labelled LAMMPS/Kripke phases...")
	t := int64(0)
	for round := 0; round < 4 && !op.Trained(); round++ {
		for _, app := range []string{"lammps", "kripke"} {
			id := table.Submit("user", []sensor.Topic{path}, t*int64(time.Second), (t+40)*int64(time.Second))
			j, _ := table.Job(id)
			j.Name = app
			table.Add(j)
			node.SetApp(workload.MustNew(app, t, 40), t*int64(time.Second))
			for end := t + 40; t < end; t++ {
				step(t)
			}
		}
	}
	if !op.Trained() {
		log.Fatal("training did not complete")
	}
	fmt.Printf("trained; classes: %v\n\n", op.Classes())

	// Recognition: run each app unlabelled and read the classification.
	for _, app := range []string{"kripke", "lammps"} {
		node.SetApp(workload.MustNew(app, t+1000, 30), t*int64(time.Second))
		for end := t + 30; t < end; t++ {
			step(t)
		}
		class, _ := qe.Latest(path.Join("app-class"))
		conf, _ := qe.Latest(path.Join("app-conf"))
		name := "unknown"
		if idx := int(class.Value); idx >= 0 && idx < len(op.Classes()) {
			name = op.Classes()[idx]
		}
		fmt.Printf("actually running %-8s -> recognised as %-8s (confidence %.0f%%)\n",
			app, name, 100*conf.Value)
	}
}
