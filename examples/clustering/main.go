// Fleet clustering: the paper's case study 3 (§VI-D) in miniature.
//
// Weeks of simulated fleet monitoring are aggregated into per-node
// (power, temperature, CPU idle time) points; the clustering operator
// fits a variational Bayesian Gaussian mixture that determines the number
// of behaviour clusters autonomously and flags nodes that are improbable
// under every fitted component as outliers — including an implanted
// degraded node drawing ~20 % extra power, the anomaly the paper reports
// investigating on CooLMUC-3.
//
// Run with:
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/dcdb/wintermute/internal/experiments"
)

func main() {
	log.SetFlags(0)
	cfg := experiments.QuickFig8()
	fmt.Printf("clustering %d nodes on %v-aggregates of power/temperature/idle time...\n\n",
		cfg.Nodes, cfg.Window)
	res, err := experiments.RunFig8(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters found autonomously: %d\n", res.NumClusters)
	fmt.Printf("outliers (density < %g under every component): %d\n\n",
		cfg.OutlierDensity, res.Outliers)

	byLabel := map[int][]int{}
	for i, p := range res.Points {
		byLabel[p.Label] = append(byLabel[p.Label], i)
	}
	labels := make([]int, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	for _, l := range labels {
		idxs := byLabel[l]
		var pw, tp, id float64
		for _, i := range idxs {
			pw += res.Points[i].Power
			tp += res.Points[i].Temp
			id += res.Points[i].IdleTime
		}
		n := float64(len(idxs))
		name := fmt.Sprintf("cluster %d", l)
		if l == -1 {
			name = "OUTLIERS "
		}
		fmt.Printf("%s: %3d nodes   avg %6.1f W   %5.2f degC   %9.0f s idle\n",
			name, len(idxs), pw/n, tp/n, id/n)
	}
	fmt.Println("\noutlier detail (the implanted anomaly draws ~20% extra power at its load level):")
	for _, p := range res.Points {
		if p.Label == -1 {
			marker := ""
			if p.Implant {
				marker = "  <- implanted degradation"
			}
			fmt.Printf("  %-16s %6.1f W  %5.2f degC  %9.0f s idle%s\n",
				p.Node, p.Power, p.Temp, p.IdleTime, marker)
		}
	}
	fmt.Printf("\ncorrelations: power/temp %+.3f, power/idle %+.3f (paper: strong linear trend)\n",
		res.CorrPowerTemp, res.CorrPowerIdle)
}
