// Persistent: a Collect Agent whose Storage Backend survives a kill.
//
// The example runs the full crash cycle in one process: a Collect Agent
// opens the embedded tsdb backend (write-ahead log + Gorilla-compressed
// segments), ingests a day's worth of simulated rack power readings, is
// abandoned mid-flight exactly like a killed daemon — no Close, no
// flush — and a second agent then recovers the directory and answers
// the same queries over REST.
//
// Run with:
//
//	go run ./examples/persistent
//
// The equivalent daemon invocation is:
//
//	collectagent -store-dir ./data -store-retention 720h
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/sensor"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "wintermute-persistent-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Life 1: ingest, then die without cleanup --------------------
	agent, err := collect.New(collect.Config{
		StoreDir:       dir,
		StoreRetention: 30 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := time.Now().Add(-24 * time.Hour)
	topics := make([]sensor.Topic, 0, 16)
	for r := 0; r < 4; r++ {
		for n := 0; n < 4; n++ {
			topics = append(topics, sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", r, n)))
		}
	}
	for _, tp := range topics {
		batch := make([]sensor.Reading, 0, 60)
		for minute := 0; minute < 24*60; minute++ {
			batch = append(batch, sensor.At(
				250+20*float64(minute%7), base.Add(time.Duration(minute)*time.Minute)))
			if len(batch) == cap(batch) {
				agent.IngestBatch(tp, batch) // one WAL append per batch
				batch = batch[:0]
			}
		}
		agent.IngestBatch(tp, batch)
	}
	// Flush half of the data the way the janitor would on its cadence,
	// so recovery exercises both paths: segments AND WAL replay.
	if err := agent.DB.Flush(); err != nil {
		log.Fatal(err)
	}
	for _, tp := range topics {
		agent.Ingest(tp, sensor.At(999, base.Add(25*time.Hour))) // post-flush stragglers
	}
	st := agent.DB.Stats()
	log.Printf("life 1: %d readings over %d topics; %d segment(s), %d B on disk (%.2f B/reading)",
		st.TotalReadings, st.Topics, st.Segments, st.DiskBytes,
		float64(st.DiskBytes)/float64(st.TotalReadings))
	// The kill: no Agent.Close, no DB flush. Abandon stands in for
	// SIGKILL — it releases the file handles and directory lock exactly
	// as process death would, flushing nothing.
	agent.Manager.Close()
	agent.DB.Abandon()

	// --- Life 2: recover and serve -----------------------------------
	agent2, err := collect.New(collect.Config{StoreDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer agent2.Close()
	st = agent2.DB.Stats()
	log.Printf("life 2: recovered %d readings (%d in WAL-replayed heads, %d segment(s))",
		st.TotalReadings, st.HeadReadings, st.Segments)

	srv, err := rest.Serve("127.0.0.1:0", agent2.Manager, agent2.QE)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{
		fmt.Sprintf("/query?sensor=%s&from=%d&to=%d",
			topics[0], base.UnixNano(), base.Add(26*time.Hour).UnixNano()),
		"/storage",
	} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(body) > 120 {
			body = append(body[:120], []byte("...")...)
		}
		log.Printf("GET %s -> %s", path, body)
	}
	if r, ok := agent2.Store.Latest(topics[0]); ok {
		log.Printf("latest %s = %.0f W at %s (the post-flush straggler survived the kill)",
			topics[0], r.Value, r.T().Format(time.RFC3339))
	}
}
