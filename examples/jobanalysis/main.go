// Job analysis: the paper's case study 2 (§VI-C) in miniature — a
// two-stage Wintermute pipeline (paper §IV-d).
//
// Stage 1 (perfmetrics, Pusher side): per-core CPI derived from raw
// cycle/instruction counters, one unit per CPU core instantiated by a
// single pattern-unit block.
//
// Stage 2 (persyst, Collect Agent side): a job operator that discovers
// the running jobs, gathers each job's per-core CPI outputs from stage 1
// and publishes the deciles of the distribution — the PerSyst quantile
// transport.
//
// Run with:
//
//	go run ./examples/jobanalysis
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/dcdb/wintermute/internal/experiments"
)

func main() {
	log.SetFlags(0)
	cfg := experiments.QuickFig7()
	fmt.Printf("running 4 jobs (%d nodes x %d cores each) through the perfmetrics -> persyst pipeline...\n\n",
		cfg.NodesPerJob, cfg.CoresPerNode)
	res, err := experiments.RunFig7(cfg)
	if err != nil {
		log.Fatal(err)
	}
	apps := make([]string, 0, len(res.PerApp))
	for app := range res.PerApp {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		rows := res.PerApp[app]
		fmt.Printf("job %-8s CPI deciles over time (dec0 / dec5 / dec10):\n", app)
		step := len(rows) / 8
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(rows); i += step {
			r := rows[i]
			fmt.Printf("  t=%4.0fs  min %5.2f   median %5.2f   max %6.2f\n",
				r.T, r.Deciles[0], r.Deciles[5], r.Deciles[10])
		}
		fmt.Println()
	}
	fmt.Println("signatures to look for (paper Figure 7):")
	fmt.Println("  lammps : tight distribution around CPI 1.6 (compute-bound)")
	fmt.Println("  amg    : low median, max spiking high (network-bound tails)")
	fmt.Println("  kripke : median ramping and resetting with each sweep iteration")
	fmt.Println("  nekbone: tight first half, then wide spread as the working set")
	fmt.Println("           outgrows high-bandwidth memory on a subset of cores")
}
