// Quickstart: the smallest complete Wintermute deployment.
//
// It builds a four-node sensor tree, samples simulated power sensors,
// instantiates an aggregator operator from ONE pattern-unit configuration
// block (one unit per rack, summing the node powers below it — the Unit
// System of paper §III), drives a few computation intervals and prints
// the resulting rack-power roll-up.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/plugins/aggregator"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
	"github.com/dcdb/wintermute/internal/pusher"
	"github.com/dcdb/wintermute/internal/samplers"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

func main() {
	log.SetFlags(0)
	// A standalone Pusher: sensor tree + caches + Wintermute manager.
	p, err := pusher.New(pusher.Config{Name: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}

	// Two racks with two nodes each; every node runs a different app.
	apps := []string{"hpl", "lammps", "amg", "idle"}
	i := 0
	for _, rack := range []string{"r01", "r02"} {
		for _, node := range []string{"n01", "n02"} {
			path := sensor.Root.JoinNode(rack).JoinNode(node)
			hw := hardware.NewNode(hardware.Config{Cores: 4, Seed: int64(i)})
			hw.SetApp(workload.MustNew(apps[i], int64(i), 3600), 0)
			if err := p.AddSampler(samplers.NewPowerSim(hw, path, time.Second)); err != nil {
				log.Fatal(err)
			}
			i++
		}
	}

	// ONE configuration block instantiates one unit per rack: the pattern
	// <bottomup>power collects all node power sensors below each rack and
	// <topdown>rack-power places the output on the rack itself.
	cfg, _ := json.Marshal(aggregator.Config{
		OperatorConfig: core.OperatorConfig{
			Name:       "rack-power",
			Inputs:     []string{"<bottomup>power"},
			Outputs:    []string{"<topdown>rack-power"},
			IntervalMs: 1000,
		},
		Operation: aggregator.Sum,
	})
	if err := p.Manager.LoadPlugin("aggregator", cfg); err != nil {
		log.Fatal(err)
	}
	op, _ := p.Manager.Operator("rack-power")
	fmt.Printf("operator %q instantiated %d units from one config block:\n",
		op.Name(), len(op.Units()))
	for _, u := range op.Units() {
		fmt.Printf("  %s\n", u)
	}

	// Drive 30 simulated seconds: sample, then compute.
	for t := 0; t < 30; t++ {
		now := time.Unix(int64(t), 0)
		p.SampleOnce(now)
		if err := p.TickOnce(now); err != nil && t > 2 {
			log.Fatal(err)
		}
	}

	fmt.Println("\nrack power roll-up (sum of node powers below each rack):")
	for _, rack := range []sensor.Topic{"/r01/rack-power", "/r02/rack-power"} {
		if r, ok := p.QE.Latest(rack); ok {
			fmt.Printf("  %-18s %7.1f W\n", rack, r.Value)
		}
	}
	fmt.Println("\nper-node power (inputs the operator consumed):")
	for _, tp := range p.Nav.AllSensors() {
		if tp.Name() != "power" {
			continue
		}
		r, _ := p.QE.Latest(tp)
		fmt.Printf("  %-22s %7.1f W\n", tp, r.Value)
	}
}
